#include "core/joza.h"

#include "sqlparse/lexer.h"
#include "sqlparse/structure.h"
#include "util/hash.h"

namespace joza::core {

const char* DetectedByName(DetectedBy d) {
  switch (d) {
    case DetectedBy::kNone: return "none";
    case DetectedBy::kNti: return "NTI";
    case DetectedBy::kPti: return "PTI";
    case DetectedBy::kBoth: return "NTI+PTI";
  }
  return "?";
}

Joza::Joza(php::FragmentSet fragments, JozaConfig config)
    : config_(config),
      pti_(std::move(fragments), config.pti),
      nti_(config.nti) {}

Joza Joza::Install(const webapp::Application& app, JozaConfig config) {
  return Joza(php::FragmentSet::FromSources(app.sources()), config);
}

void Joza::OnSourcesChanged(const std::vector<php::SourceFile>& files) {
  pti_.AddFragments(files);
  // New fragments can only widen the trusted set, but cached verdicts were
  // computed against the old vocabulary; drop them for simplicity.
  safe_query_cache_.clear();
  safe_structure_cache_.clear();
}

pti::PtiResult Joza::RunPti(std::string_view query,
                            const std::vector<sql::Token>& tokens) {
  ++stats_.pti_full_runs;
  if (pti_backend_) return pti_backend_(query, tokens);
  return pti_.Analyze(query, tokens);
}

Verdict Joza::Check(std::string_view query,
                    const std::vector<http::Input>& inputs) {
  ++stats_.queries_checked;
  Verdict verdict;
  const std::vector<sql::Token> tokens = sql::Lex(query);

  // --- PTI (with caches) ---------------------------------------------------
  bool pti_safe = true;
  if (config_.enable_pti) {
    bool resolved = false;
    const std::uint64_t qhash = Fnv1a64(query);
    if (config_.query_cache && safe_query_cache_.contains(qhash)) {
      ++stats_.query_cache_hits;
      verdict.query_cache_hit = true;
      resolved = true;  // safe
    }

    std::uint64_t shash = 0;
    bool have_shash = false;
    if (!resolved && config_.structure_cache) {
      auto parsed = sql::StructureHashOf(query);
      if (parsed.ok()) {
        shash = parsed.value();
        have_shash = true;
        if (safe_structure_cache_.contains(shash)) {
          ++stats_.structure_cache_hits;
          verdict.structure_cache_hit = true;
          resolved = true;  // same shape as a previously PTI-safe query
        }
      }
    }

    if (!resolved) {
      verdict.pti = RunPti(query, tokens);
      pti_safe = !verdict.pti.attack_detected;
      if (pti_safe) {
        if (config_.query_cache) safe_query_cache_.insert(qhash);
        if (config_.structure_cache) {
          if (!have_shash) {
            auto parsed = sql::StructureHashOf(query);
            if (parsed.ok()) {
              shash = parsed.value();
              have_shash = true;
            }
          }
          if (have_shash) safe_structure_cache_.insert(shash);
        }
      }
    }
  }

  // --- NTI (never cached: depends on this request's inputs) ---------------
  bool nti_safe = true;
  if (config_.enable_nti) {
    ++stats_.nti_runs;
    verdict.nti = nti_.Analyze(query, tokens, inputs);
    nti_safe = !verdict.nti.attack_detected;
  }

  verdict.attack = !pti_safe || !nti_safe;
  if (!pti_safe && !nti_safe) {
    verdict.detected_by = DetectedBy::kBoth;
  } else if (!pti_safe) {
    verdict.detected_by = DetectedBy::kPti;
  } else if (!nti_safe) {
    verdict.detected_by = DetectedBy::kNti;
  }
  if (verdict.attack) {
    ++stats_.attacks_detected;
    if (attack_sink_) {
      AttackReport report;
      report.query = std::string(query);
      report.detected_by = verdict.detected_by;
      report.sequence = stats_.attacks_detected;
      for (const sql::Token& t : verdict.pti.untrusted_critical_tokens) {
        report.untrusted_tokens.emplace_back(t.text);
      }
      // Report the marking that actually covered a critical token, if any.
      if (verdict.nti.attack_detected && !verdict.nti.markings.empty()) {
        for (const nti::TaintMarking& m : verdict.nti.markings) {
          bool covers = false;
          for (const sql::Token& t : verdict.nti.tainted_critical_tokens) {
            if (m.span.contains(t.span)) covers = true;
          }
          if (!covers) continue;
          report.matched_input_name = m.input_name;
          report.matched_input_kind = m.input_kind;
          report.matched_span = m.span;
          report.match_ratio = m.ratio;
          break;
        }
      }
      attack_sink_(report);
    }
  }
  return verdict;
}

std::string AttackReport::ToLogLine() const {
  std::string line = "JOZA-ATTACK #" + std::to_string(sequence) + " by=" +
                     DetectedByName(detected_by);
  if (!matched_input_name.empty()) {
    line += " input=" + std::string(http::InputKindName(matched_input_kind)) +
            ":" + matched_input_name + " span=[" +
            std::to_string(matched_span.begin) + "," +
            std::to_string(matched_span.end) + ") ratio=" +
            std::to_string(match_ratio);
  }
  if (!untrusted_tokens.empty()) {
    line += " untrusted=";
    for (std::size_t i = 0; i < untrusted_tokens.size(); ++i) {
      if (i > 0) line += ",";
      line += "\"" + untrusted_tokens[i] + "\"";
    }
  }
  line += " query=\"" + query + "\"";
  return line;
}

webapp::QueryGate Joza::MakeGate() {
  return [this](std::string_view sql, const http::Request& request) {
    Verdict v = Check(sql, request.AllInputs());
    webapp::GateDecision decision;
    if (!v.attack) {
      decision.action = webapp::GateDecision::Action::kAllow;
      return decision;
    }
    decision.reason = std::string("SQL injection detected by ") +
                      DetectedByName(v.detected_by);
    decision.action = config_.recovery == RecoveryPolicy::kTerminate
                          ? webapp::GateDecision::Action::kBlockTerminate
                          : webapp::GateDecision::Action::kBlockError;
    return decision;
  };
}

}  // namespace joza::core
