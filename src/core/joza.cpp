#include "core/joza.h"

#include "sqlparse/lexer.h"
#include "sqlparse/structure.h"
#include "util/hash.h"

namespace joza::core {

const char* DetectedByName(DetectedBy d) {
  switch (d) {
    case DetectedBy::kNone: return "none";
    case DetectedBy::kNti: return "NTI";
    case DetectedBy::kPti: return "PTI";
    case DetectedBy::kBoth: return "NTI+PTI";
  }
  return "?";
}

const char* DegradedModeName(DegradedMode mode) {
  switch (mode) {
    case DegradedMode::kFailClosed: return "fail-closed";
    case DegradedMode::kNtiOnly: return "nti-only";
  }
  return "?";
}

JozaStats& JozaStats::operator+=(const JozaStats& other) {
  queries_checked += other.queries_checked;
  attacks_detected += other.attacks_detected;
  query_cache_hits += other.query_cache_hits;
  structure_cache_hits += other.structure_cache_hits;
  pti_full_runs += other.pti_full_runs;
  nti_runs += other.nti_runs;
  cache_evictions += other.cache_evictions;
  pti_failures += other.pti_failures;
  breaker_fast_rejects += other.breaker_fast_rejects;
  degraded_checks += other.degraded_checks;
  degraded_blocks += other.degraded_blocks;
  return *this;
}

Joza::Joza(php::FragmentSet fragments, JozaConfig config)
    : config_(config),
      pti_(std::move(fragments), config.pti),
      nti_(config.nti),
      state_(std::make_unique<SharedState>(config.cache_capacity,
                                           config.cache_shards,
                                           config.breaker)) {}

Joza Joza::Install(const webapp::Application& app, JozaConfig config) {
  return Joza(php::FragmentSet::FromSources(app.sources()), config);
}

JozaStats Joza::stats() const {
  JozaStats out;
  const AtomicStats& a = state_->stats;
  out.queries_checked = a.queries_checked.load(std::memory_order_relaxed);
  out.attacks_detected = a.attacks_detected.load(std::memory_order_relaxed);
  out.query_cache_hits = a.query_cache_hits.load(std::memory_order_relaxed);
  out.structure_cache_hits =
      a.structure_cache_hits.load(std::memory_order_relaxed);
  out.pti_full_runs = a.pti_full_runs.load(std::memory_order_relaxed);
  out.nti_runs = a.nti_runs.load(std::memory_order_relaxed);
  out.pti_failures = a.pti_failures.load(std::memory_order_relaxed);
  out.breaker_fast_rejects =
      a.breaker_fast_rejects.load(std::memory_order_relaxed);
  out.degraded_checks = a.degraded_checks.load(std::memory_order_relaxed);
  out.degraded_blocks = a.degraded_blocks.load(std::memory_order_relaxed);
  out.cache_evictions =
      state_->query_cache.evictions() + state_->structure_cache.evictions() -
      state_->evictions_baseline.load(std::memory_order_relaxed);
  return out;
}

void Joza::ResetStats() {
  AtomicStats& a = state_->stats;
  a.queries_checked.store(0, std::memory_order_relaxed);
  a.attacks_detected.store(0, std::memory_order_relaxed);
  a.query_cache_hits.store(0, std::memory_order_relaxed);
  a.structure_cache_hits.store(0, std::memory_order_relaxed);
  a.pti_full_runs.store(0, std::memory_order_relaxed);
  a.nti_runs.store(0, std::memory_order_relaxed);
  a.pti_failures.store(0, std::memory_order_relaxed);
  a.breaker_fast_rejects.store(0, std::memory_order_relaxed);
  a.degraded_checks.store(0, std::memory_order_relaxed);
  a.degraded_blocks.store(0, std::memory_order_relaxed);
  state_->evictions_baseline.store(
      state_->query_cache.evictions() + state_->structure_cache.evictions(),
      std::memory_order_relaxed);
}

void Joza::OnSourcesChanged(const std::vector<php::SourceFile>& files) {
  // Writer lock: quiesce concurrent checks while the automaton rebuilds.
  std::unique_lock<std::shared_mutex> lock(state_->fragments_mu);
  pti_.AddFragments(files);
  // New fragments can only widen the trusted set, but cached verdicts were
  // computed against the old vocabulary; drop them for simplicity.
  state_->query_cache.Clear();
  state_->structure_cache.Clear();
}

StatusOr<pti::PtiResult> Joza::RunPti(std::string_view query,
                                      const std::vector<sql::Token>& tokens,
                                      util::Deadline deadline) {
  state_->stats.pti_full_runs.fetch_add(1, std::memory_order_relaxed);
  if (pti_backend_) {
    if (!state_->breaker.Allow()) {
      state_->stats.breaker_fast_rejects.fetch_add(1,
                                                   std::memory_order_relaxed);
      state_->stats.pti_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("PTI circuit breaker open");
    }
    auto result = pti_backend_(query, tokens, deadline);
    if (!result.ok()) {
      state_->breaker.RecordFailure();
      state_->stats.pti_failures.fetch_add(1, std::memory_order_relaxed);
      return result.status();
    }
    state_->breaker.RecordSuccess();
    return result;
  }
  if (config_.pti.use_aho_corasick) return pti_.Analyze(query, tokens);
  // The naive path reorders its MRU fragment list during analysis.
  std::lock_guard<std::mutex> lock(state_->pti_mru_mu);
  return pti_.Analyze(query, tokens);
}

Verdict Joza::Check(std::string_view query,
                    const std::vector<http::Input>& inputs,
                    util::Deadline deadline) {
  // Reader lock against OnSourcesChanged; checks never block each other.
  std::shared_lock<std::shared_mutex> fragments_lock(state_->fragments_mu);
  state_->stats.queries_checked.fetch_add(1, std::memory_order_relaxed);
  Verdict verdict;
  const std::vector<sql::Token> tokens = sql::Lex(query);

  // --- PTI (with caches) ---------------------------------------------------
  bool pti_safe = true;
  if (config_.enable_pti) {
    bool resolved = false;
    const std::uint64_t qhash = Fnv1a64(query);
    if (config_.query_cache && state_->query_cache.Lookup(qhash)) {
      state_->stats.query_cache_hits.fetch_add(1, std::memory_order_relaxed);
      verdict.query_cache_hit = true;
      resolved = true;  // safe
    }

    std::uint64_t shash = 0;
    bool have_shash = false;
    if (!resolved && config_.structure_cache) {
      auto parsed = sql::StructureHashOf(query);
      if (parsed.ok()) {
        shash = parsed.value();
        have_shash = true;
        if (state_->structure_cache.Lookup(shash)) {
          state_->stats.structure_cache_hits.fetch_add(
              1, std::memory_order_relaxed);
          verdict.structure_cache_hit = true;
          resolved = true;  // same shape as a previously PTI-safe query
        }
      }
    }

    if (!resolved) {
      auto pti_or = RunPti(query, tokens, deadline);
      if (pti_or.ok()) {
        verdict.pti = std::move(pti_or).value();
        pti_safe = !verdict.pti.attack_detected;
        if (pti_safe) {
          if (config_.query_cache) state_->query_cache.Insert(qhash);
          if (config_.structure_cache) {
            if (!have_shash) {
              auto parsed = sql::StructureHashOf(query);
              if (parsed.ok()) {
                shash = parsed.value();
                have_shash = true;
              }
            }
            if (have_shash) state_->structure_cache.Insert(shash);
          }
        }
      } else {
        // No PTI verdict: degraded-mode policy decides. Never cache —
        // nothing was proven safe.
        verdict.degraded = true;
        verdict.pti_unavailable = true;
        state_->stats.degraded_checks.fetch_add(1, std::memory_order_relaxed);
        if (config_.degraded_mode == DegradedMode::kNtiOnly &&
            config_.enable_nti) {
          // NTI alone decides; PTI treated as (unproven) safe.
        } else {
          // Fail closed — also the forced fallback for kNtiOnly when NTI
          // is disabled: with no analyzer at all, nothing may pass.
          pti_safe = false;
          verdict.pti.attack_detected = true;
        }
      }
    }
  }

  // --- NTI (never cached: depends on this request's inputs) ---------------
  bool nti_safe = true;
  if (config_.enable_nti) {
    state_->stats.nti_runs.fetch_add(1, std::memory_order_relaxed);
    verdict.nti = nti_.Analyze(query, tokens, inputs);
    nti_safe = !verdict.nti.attack_detected;
  }

  verdict.attack = !pti_safe || !nti_safe;
  // A degraded fail-closed block is not a PTI *detection*: attribute only
  // what an analyzer actually found.
  const bool pti_detected = !pti_safe && !verdict.pti_unavailable;
  if (pti_detected && !nti_safe) {
    verdict.detected_by = DetectedBy::kBoth;
  } else if (pti_detected) {
    verdict.detected_by = DetectedBy::kPti;
  } else if (!nti_safe) {
    verdict.detected_by = DetectedBy::kNti;
  }
  // A block caused only by PTI being unavailable is counted separately and
  // kept out of the attack audit log (a daemon outage must not flood the
  // sink with one phantom attack per request).
  if (verdict.attack && verdict.detected_by == DetectedBy::kNone) {
    state_->stats.degraded_blocks.fetch_add(1, std::memory_order_relaxed);
    return verdict;
  }
  if (verdict.attack) {
    const std::size_t sequence =
        state_->stats.attacks_detected.fetch_add(1, std::memory_order_relaxed) +
        1;
    if (attack_sink_) {
      AttackReport report;
      report.query = std::string(query);
      report.detected_by = verdict.detected_by;
      report.sequence = sequence;
      for (const sql::Token& t : verdict.pti.untrusted_critical_tokens) {
        report.untrusted_tokens.emplace_back(t.text);
      }
      // Report the marking that actually covered a critical token, if any.
      if (verdict.nti.attack_detected && !verdict.nti.markings.empty()) {
        for (const nti::TaintMarking& m : verdict.nti.markings) {
          bool covers = false;
          for (const sql::Token& t : verdict.nti.tainted_critical_tokens) {
            if (m.span.contains(t.span)) covers = true;
          }
          if (!covers) continue;
          report.matched_input_name = m.input_name;
          report.matched_input_kind = m.input_kind;
          report.matched_span = m.span;
          report.match_ratio = m.ratio;
          break;
        }
      }
      std::lock_guard<std::mutex> sink_lock(state_->sink_mu);
      attack_sink_(report);
    }
  }
  return verdict;
}

std::string AttackReport::ToLogLine() const {
  std::string line = "JOZA-ATTACK #" + std::to_string(sequence) + " by=" +
                     DetectedByName(detected_by);
  if (!matched_input_name.empty()) {
    line += " input=" + std::string(http::InputKindName(matched_input_kind)) +
            ":" + matched_input_name + " span=[" +
            std::to_string(matched_span.begin) + "," +
            std::to_string(matched_span.end) + ") ratio=" +
            std::to_string(match_ratio);
  }
  if (!untrusted_tokens.empty()) {
    line += " untrusted=";
    for (std::size_t i = 0; i < untrusted_tokens.size(); ++i) {
      if (i > 0) line += ",";
      line += "\"" + untrusted_tokens[i] + "\"";
    }
  }
  line += " query=\"" + query + "\"";
  return line;
}

webapp::QueryGate Joza::MakeGate() {
  return [this](std::string_view sql, const http::Request& request) {
    Verdict v = Check(sql, request.AllInputs());
    webapp::GateDecision decision;
    if (!v.attack) {
      decision.action = webapp::GateDecision::Action::kAllow;
      return decision;
    }
    if (v.detected_by == DetectedBy::kNone) {
      // Degraded fail-closed block, not a detection: always virtualize the
      // error — the app sees a failed query and renders its own error page,
      // so an analyzer outage looks like a database hiccup, never a
      // site-wide hard 500 (and never an open door).
      decision.reason = "PTI unavailable: degraded fail-closed";
      decision.action = webapp::GateDecision::Action::kBlockError;
      return decision;
    }
    decision.reason = std::string("SQL injection detected by ") +
                      DetectedByName(v.detected_by);
    decision.action = config_.recovery == RecoveryPolicy::kTerminate
                          ? webapp::GateDecision::Action::kBlockTerminate
                          : webapp::GateDecision::Action::kBlockError;
    return decision;
  };
}

}  // namespace joza::core
