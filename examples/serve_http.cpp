// Serve the protected WP-SQLI-LAB testbed over real loopback HTTP and
// attack it through the wire — the closest analogue of pointing SQLMap at
// the paper's Apache deployment.
#include <cstdio>

#include "attack/catalog.h"
#include "core/joza.h"
#include "webapp/http_server.h"

int main() {
  using namespace joza;

  auto app = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());

  webapp::HttpServer server(*app);
  auto port = server.Start();
  if (!port.ok()) {
    std::printf("failed to start: %s\n", port.status().ToString().c_str());
    return 1;
  }
  std::printf("WP-SQLI-LAB (protected) listening on 127.0.0.1:%d\n\n",
              port.value());

  auto fetch = [&](const char* label, const std::string& path) {
    auto r = webapp::HttpGet(port.value(), path);
    if (!r.ok()) {
      std::printf("%-8s GET %-55s -> error\n", label, path.c_str());
      return;
    }
    std::string preview = r->body.substr(0, 60);
    std::printf("%-8s GET %-55s -> HTTP %d  %s%s\n", label, path.c_str(),
                r->status, preview.c_str(),
                r->body.size() > 60 ? "..." : "");
  };

  fetch("benign", "/");
  fetch("benign", "/post?id=7");
  fetch("benign", "/search?s=Post");
  fetch("benign", "/plugins/community-events?uid=1");
  fetch("attack", "/plugins/community-events?uid=-1%20or%201%3D1");
  fetch("attack",
        "/plugins/count-per-day?id=-1%20union%20select%20login,%20pass%20"
        "from%20wp_users");
  fetch("attack", "/plugins/mystat?q=zzz%27%20or%20(select%20count(*)%20from"
                  "%20wp_users%20where%20pass%20%3E%20char(114))%20%3E%200"
                  "%20--%20a");

  std::printf("\nserved %zu requests; Joza blocked %zu attacks\n",
              server.requests_served(), joza.stats().attacks_detected);
  server.Stop();
  return 0;
}
