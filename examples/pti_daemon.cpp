// The deployment story of Section IV-C: PTI runs as a user-level daemon
// process, reached over anonymous pipes — no PHP extension, no admin
// rights. This example spawns the daemon, analyzes queries through it,
// ships a plugin update, and compares the daemon lifetimes.
#include <cstdio>

#include "ipc/daemon.h"
#include "phpsrc/fragments.h"
#include "util/stopwatch.h"

int main() {
  using namespace joza;

  php::FragmentSet fragments;
  fragments.AddRaw("SELECT * FROM records WHERE ID=");
  fragments.AddRaw(" LIMIT 5");

  // Persistent daemon: forked once, reused for every query.
  ipc::DaemonClient daemon(ipc::DaemonClient::Mode::kPersistent, fragments);
  if (!daemon.Ping().ok()) {
    std::puts("daemon failed to start");
    return 1;
  }
  std::puts("persistent PTI daemon is up (forked child, anonymous pipes)");

  auto analyze = [&daemon](const char* query) {
    auto v = daemon.Analyze(query);
    if (!v.ok()) {
      std::printf("  %-66s -> error: %s\n", query, v.status().ToString().c_str());
      return;
    }
    std::printf("  %-66s -> %s (%u untrusted tokens)\n", query,
                v->attack_detected ? "ATTACK" : "safe",
                v->untrusted_critical_tokens);
  };

  analyze("SELECT * FROM records WHERE ID=7 LIMIT 5");
  analyze("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");

  // A plugin update lands: the preprocessor re-runs the installer and
  // ships the new fragments to the running daemon.
  std::puts("\nplugin update: adding fragment \" ORDER BY views DESC\"");
  daemon.AddFragments({" ORDER BY views DESC"});
  analyze("SELECT * FROM records WHERE ID=7 ORDER BY views DESC LIMIT 5");

  // Cost of the other lifetime: a fresh daemon per request rebuilds the
  // fragment index every time (the unoptimized tier of Figure 7).
  ipc::DaemonClient per_request(ipc::DaemonClient::Mode::kSpawnPerRequest,
                                fragments);
  Stopwatch watch;
  per_request.Analyze("SELECT * FROM records WHERE ID=7 LIMIT 5");
  const double spawn_ms = watch.ElapsedMicros() / 1000.0;
  watch.Reset();
  daemon.Analyze("SELECT * FROM records WHERE ID=7 LIMIT 5");
  const double persistent_ms = watch.ElapsedMicros() / 1000.0;
  std::printf(
      "\nper-query cost: spawn-per-request %.3f ms vs persistent %.3f ms\n",
      spawn_ms, persistent_ms);

  daemon.Shutdown();
  std::puts("daemon shut down cleanly");
  return 0;
}
