// End-to-end scenario: a WordPress-like application with a vulnerable
// plugin, protected by Joza as an interception gate.
//
// Shows the full request pipeline: HTTP request -> input transformations
// -> query construction -> Joza (PTI + NTI) -> database -> rendered page,
// with the exploit leaking data when unprotected and a blank page when
// protected.
#include <cstdio>

#include "core/joza.h"
#include "http/request.h"
#include "webapp/application.h"

int main() {
  using namespace joza;

  auto app = webapp::MakeWordpressLikeApp(/*seed=*/2015);

  // A classic vulnerable plugin: unsanitized id in a numeric context.
  app->AddEndpoint(
      webapp::Endpoint{"/plugins/gallery", "id", {webapp::Transform::kMagicQuotes},
                       "SELECT title, views FROM wp_posts WHERE id = ", "",
                       false, webapp::ResponseMode::kData},
      "wp-content/plugins/gallery/gallery.php");

  const auto benign = http::Request::Get("/plugins/gallery", {{"id", "3"}});
  const auto attack = http::Request::Get(
      "/plugins/gallery",
      {{"id", "-1 UNION SELECT login, pass FROM wp_users"}});

  std::puts("--- Unprotected application ---");
  auto r1 = app->Handle(benign);
  std::printf("benign : HTTP %d  %s\n", r1.status, r1.body.c_str());
  auto r2 = app->Handle(attack);
  std::printf("attack : HTTP %d  %s   <-- password hashes leaked!\n",
              r2.status, r2.body.c_str());

  // Install Joza: scan the application sources, hook the query gate.
  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());

  std::puts("\n--- Protected by Joza ---");
  auto r3 = app->Handle(benign);
  std::printf("benign : HTTP %d  %s\n", r3.status, r3.body.c_str());
  auto r4 = app->Handle(attack);
  std::printf("attack : HTTP %d  [%s]   <-- terminated, blank page\n",
              r4.status, r4.body.empty() ? "empty body" : r4.body.c_str());

  const core::JozaStats& s = joza.stats();
  std::printf(
      "\nJoza stats: %zu queries checked, %zu attacks detected, "
      "%zu query-cache hits, %zu structure-cache hits\n",
      s.queries_checked, s.attacks_detected, s.query_cache_hits,
      s.structure_cache_hits);
  return 0;
}
