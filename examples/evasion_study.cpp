// Reproduction of Figure 6: one exploit, four variants.
//
//   A. the original harvested exploit       -> caught by NTI and PTI
//   B. Taintless-adapted (PTI evasion)      -> slips past PTI, NTI catches
//   C. quote-comment mutated (NTI evasion)  -> slips past NTI, PTI catches
//   D. both evasions combined               -> each half catches the other's
//                                              evasion; Joza still blocks
#include <cstdio>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "core/joza.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"

using namespace joza;

namespace {

void Report(const char* variant, const attack::PluginSpec& plugin,
            const std::string& payload, nti::NtiAnalyzer& nti,
            pti::PtiAnalyzer& pti, core::Joza& joza) {
  const std::string query = attack::QueryFor(plugin, payload);
  const auto inputs = attack::InputsFor(plugin, payload);
  const bool nti_hit = nti.Analyze(query, inputs).attack_detected;
  const bool pti_hit = pti.Analyze(query).attack_detected;
  core::Verdict v = joza.Check(query, inputs);
  std::printf("%s\n  payload: %s\n  NTI: %-8s PTI: %-8s Joza: %s\n\n",
              variant, payload.c_str(),
              nti_hit ? "DETECT" : "miss", pti_hit ? "DETECT" : "miss",
              v.attack ? "BLOCKED" : "MISSED");
}

}  // namespace

int main() {
  auto app = attack::MakeTestbed();
  php::FragmentSet fragments = php::FragmentSet::FromSources(app->sources());
  nti::NtiAnalyzer nti;
  pti::PtiAnalyzer pti(fragments);
  core::JozaConfig cfg;
  cfg.query_cache = false;  // show raw per-variant analysis
  cfg.structure_cache = false;
  core::Joza joza(std::move(fragments), cfg);

  // A rich tautology plugin: the worst case for PTI (its vocabulary holds
  // OR and =) and, with magic quotes active, a good case for NTI evasion.
  const attack::PluginSpec* plugin = nullptr;
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    if (p.name == "Community Events") plugin = &p;
  }

  std::printf("Target: %s %s (%s)\n\n", plugin->name.c_str(),
              plugin->version.c_str(), attack::AttackTypeName(plugin->type));

  // A — original exploit.
  attack::Exploit original = attack::OriginalExploit(*plugin);
  Report("A. original exploit", *plugin, original.payload, nti, pti, joza);

  // B — Taintless (PTI evasion).
  attack::TaintlessResult taintless = attack::RunTaintless(*plugin, pti, *app);
  Report(("B. Taintless-adapted (" + taintless.strategy + ")").c_str(),
         *plugin, taintless.exploit.payload, nti, pti, joza);

  // C — NTI evasion via magic-quoted comment block.
  attack::NtiMutation mutation =
      attack::MutateForNtiEvasion(*plugin, original, nti.config());
  Report(("C. NTI-mutated (" + mutation.technique + ")").c_str(), *plugin,
         mutation.exploit.payload, nti, pti, joza);

  // D — both at once: Taintless payload + the quote-comment block.
  attack::NtiMutation combined =
      attack::MutateForNtiEvasion(*plugin, taintless.exploit, nti.config());
  Report("D. combined evasions", *plugin, combined.exploit.payload, nti, pti,
         joza);

  std::puts("The hybrid holds: every variant trips at least one inference.");
  return 0;
}
