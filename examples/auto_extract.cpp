// The attacker's-eye view: an automated extraction tool (the SQLMap role)
// pulling the admin password hash out of the testbed through three
// different channels — then hitting a wall once Joza is installed.
#include <cstdio>

#include "attack/extractor.h"
#include "core/joza.h"

using namespace joza;

namespace {

const attack::PluginSpec& Find(const char* name) {
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    if (p.name == name) return p;
  }
  std::abort();
}

void Run(webapp::Application& app, const char* plugin_name) {
  const attack::PluginSpec& plugin = Find(plugin_name);
  attack::Extractor extractor(app, plugin);
  auto r = extractor.ExtractSecret();
  std::printf("  %-18s (%-14s) injectable=%-3s  %-13s  %4zu req  -> %s\n",
              plugin.name.c_str(), attack::AttackTypeName(plugin.type),
              r.injectable ? "yes" : "no",
              r.technique.c_str(), r.requests_used,
              r.success ? ("\"" + r.extracted + "\"").c_str() : "(nothing)");
}

}  // namespace

int main() {
  auto app = attack::MakeTestbed();
  const char* targets[] = {"Count per Day", "Eventify", "MyStat",
                           "Advertiser"};

  // Step 1 of real tooling: schema discovery via information_schema.
  {
    attack::Extractor recon(*app, Find("Count per Day"));
    auto tables = recon.EnumerateTables();
    std::printf("--- Recon: %zu tables discovered via information_schema:",
                tables.size());
    for (const auto& t : tables) std::printf(" %s", t.c_str());
    std::puts(" ---\n");
  }

  std::puts("--- Unprotected: automated extraction of wp_users.pass ---");
  for (const char* t : targets) Run(*app, t);

  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());
  std::puts("\n--- Same tool, Joza installed ---");
  for (const char* t : targets) Run(*app, t);

  std::printf("\nJoza blocked %zu attack queries in total\n",
              joza.stats().attacks_detected);
  return 0;
}
