// Quickstart: protect queries with Joza in ~30 lines.
//
//   1. Extract trusted fragments from the application's source.
//   2. Construct a Joza engine.
//   3. Check every query (with the request's inputs) before the database.
#include <cstdio>

#include "core/joza.h"
#include "phpsrc/fragments.h"

int main() {
  using namespace joza;

  // 1. The application source — Joza's installer extracts the string
  //    literals ("SELECT * FROM records WHERE ID=" and " LIMIT 5").
  std::vector<php::SourceFile> sources = {{"app.php", R"PHP(<?php
$postid = $_GET['id'];
$query = "SELECT * FROM records WHERE ID=$postid LIMIT 5";
$result = mysql_query($query);
)PHP"}};

  // 2. Build the engine.
  core::Joza engine(php::FragmentSet::FromSources(sources));

  // 3. Check queries. The inputs are what the HTTP layer saw.
  auto check = [&engine](const char* label, const char* query,
                         const char* id_value) {
    std::vector<http::Input> inputs = {
        {http::InputKind::kGet, "id", id_value}};
    core::Verdict v = engine.Check(query, inputs);
    std::printf("%-8s %-70s -> %s%s\n", label, query,
                v.attack ? "BLOCKED by " : "allowed",
                v.attack ? core::DetectedByName(v.detected_by) : "");
  };

  check("benign", "SELECT * FROM records WHERE ID=17 LIMIT 5", "17");
  check("benign", "SELECT * FROM records WHERE ID=23 LIMIT 5", "23");
  check("attack", "SELECT * FROM records WHERE ID=-1 OR 1=1 LIMIT 5",
        "-1 OR 1=1");
  check("attack",
        "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5",
        "-1 UNION SELECT username()");
  return 0;
}
