// Section VI-A's measurement setup at the paper's scale: "a fully
// functional Wordpress site populated with 1001 unique URLs. Crawling the
// entire website resulted in approximately 20,000 SQL queries."
//
// Reproduced: a testbed with 1000 posts, a crawl over 1001 unique URLs
// (front page + 1000 post pages), the resulting query count, cache hit
// accounting and per-query analysis cost under full Joza protection.
#include "attack/catalog.h"
#include "benchkit/serve.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

int main() {
  constexpr std::size_t kPosts = 1000;
  auto app = webapp::MakeWordpressLikeApp(/*seed=*/2015, kPosts);
  attack::InstallCatalog(*app);

  // The 1001 unique URLs: "/" plus every post page.
  std::vector<attack::WorkloadRequest> crawl;
  crawl.push_back({http::Request::Get("/", {}), false});
  for (std::size_t i = 1; i <= kPosts; ++i) {
    crawl.push_back(
        {http::Request::Get("/post", {{"id", std::to_string(i)}}), false});
  }

  // Unprotected baseline (one unmeasured warm-up crawl first so the
  // process/allocator cold start doesn't land in the baseline).
  benchkit::ServeOnce(*app, crawl);
  const double plain = benchkit::ServeOnce(*app, crawl);

  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());
  // First crawl: cold caches (the installer just ran).
  const double cold = benchkit::ServeOnce(*app, crawl);
  const core::JozaStats after_cold = joza.stats();
  // Second crawl: steady state.
  const double warm = benchkit::ServeOnce(*app, crawl);
  const core::JozaStats after_warm = joza.stats();
  app->SetQueryGate(nullptr);

  benchkit::Table table({"Metric", "Value", "Paper"});
  table.AddRow({"Unique URLs crawled", std::to_string(crawl.size()), "1001"});
  table.AddRow({"SQL queries per crawl",
                std::to_string(after_cold.queries_checked), "~20,000"});
  table.AddRow({"Cold-crawl full PTI runs",
                std::to_string(after_cold.pti_full_runs), "-"});
  table.AddRow(
      {"Warm-crawl full PTI runs",
       std::to_string(after_warm.pti_full_runs - after_cold.pti_full_runs),
       "~0 (cache)"});
  const std::size_t warm_queries =
      after_warm.queries_checked - after_cold.queries_checked;
  const std::size_t warm_hits =
      (after_warm.query_cache_hits - after_cold.query_cache_hits) +
      (after_warm.structure_cache_hits - after_cold.structure_cache_hits);
  table.AddRow({"Warm-crawl cache hit rate",
                benchkit::Pct(static_cast<double>(warm_hits) /
                           static_cast<double>(warm_queries)),
                "high"});
  table.AddRow({"Crawl time plain (s)", benchkit::Num(plain), "-"});
  table.AddRow({"Crawl time cold (s)", benchkit::Num(cold), "-"});
  table.AddRow({"Crawl time warm (s)", benchkit::Num(warm), "-"});
  table.AddRow({"Warm overhead", benchkit::Pct(benchkit::Overhead(plain, warm)),
                "<4% (read)"});
  table.AddRow({"False positives", std::to_string(after_warm.attacks_detected),
                "0"});
  table.Print("Crawl at paper scale (1001 URLs)");
  return 0;
}
