// Table III: sample fragments extracted from the WordPress-like core and
// the 50 plugins — the vocabulary PTI trusts (and Taintless raids).
#include <algorithm>

#include "attack/catalog.h"
#include "phpsrc/fragments.h"
#include "benchkit/metrics.h"

int main() {
  using namespace joza;
  auto app = attack::MakeTestbed();
  auto set = php::FragmentSet::FromSources(app->sources());

  // The fragments the paper's Table III lists.
  const char* paper_samples[] = {"UNION",    "AND",      "OR",    "SELECT",
                                 "CHAR",     "#",        "\"",    "`",
                                 "GROUP BY", "ORDER BY", "CAST",  "WHERE 1"};
  benchkit::Table presence({"Paper Table III fragment", "Present in corpus"});
  for (const char* f : paper_samples) {
    bool found = set.Contains(f);
    if (!found) {
      // Space-padded variants count: " OR " carries the same trust.
      for (const php::Fragment& frag : set.fragments()) {
        if (frag.text.find(f) != std::string::npos &&
            frag.text.size() <= std::string(f).size() + 4) {
          found = true;
          break;
        }
      }
    }
    presence.AddRow({f, found ? "yes" : "no"});
  }
  presence.Print("Table III: sample fragments (paper's list vs this corpus)");

  // A sample of the actual extracted vocabulary.
  std::vector<std::string> texts;
  for (const php::Fragment& f : set.fragments()) texts.push_back(f.text);
  std::sort(texts.begin(), texts.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() < b.size() || (a.size() == b.size() && a < b);
            });
  benchkit::Table sample({"Extracted fragment (shortest 20 of " +
                       std::to_string(texts.size()) + ")"});
  for (std::size_t i = 0; i < texts.size() && i < 20; ++i) {
    sample.AddRow({"\"" + texts[i] + "\""});
  }
  sample.Print("Extracted fragment vocabulary sample");
  return 0;
}
