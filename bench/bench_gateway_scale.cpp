// Over-the-wire scaling of the concurrent protection gateway.
//
// The paper deploys Joza inside a single Apache worker; this bench measures
// what the gateway layer adds on top: HTTP/1.1 keep-alive, a worker pool
// sharing ONE Joza engine (sharded caches, atomic stats), and graceful
// overload behaviour. Three questions:
//
//   1. Throughput: QPS of the gateway at 1/2/4/8 workers vs the seed's
//      single-threaded HTTP/1.0 server, both protected by Joza.
//   2. Protection cost on the wire: gateway with vs without Joza.
//   3. Consistency: concurrent serving must produce exactly the verdicts
//      sequential serving produces (same blocked count, same stats).
//
// Note: on a single-core container the worker rows measure keep-alive and
// pipeline overlap rather than true CPU parallelism; the >1 worker rows
// separate from the baseline mostly by dropping the per-request TCP
// handshake.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "attack/workload.h"
#include "core/joza.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "report.h"
#include "webapp/http_server.h"

using namespace joza;

namespace {

struct RunResult {
  double seconds = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double qps() const { return requests / seconds; }
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const std::size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

// Drives `clients` threads. `make_sender(c)` runs inside thread `c` and
// returns a callable `bool(std::size_t i)` that ships request i; per-thread
// state (a keep-alive connection) lives and dies with the thread, so no
// idle connection pins a gateway worker after its slice is done.
template <typename MakeSender>
RunResult DriveClients(std::size_t clients, std::size_t per_client,
                       MakeSender&& make_sender) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto send_one = make_sender(c);
      latencies[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!send_one(i)) failures.fetch_add(1);
        const auto t1 = std::chrono::steady_clock::now();
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.requests = clients * per_client;
  r.failures = failures.load();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  r.p50_ms = Percentile(all, 0.50);
  r.p99_ms = Percentile(all, 0.99);
  return r;
}

std::vector<std::string> SerializeCrawl(std::size_t count,
                                        std::uint64_t seed) {
  std::vector<std::string> raw;
  for (const attack::WorkloadRequest& wr :
       attack::MakeCrawlWorkload(count, seed)) {
    raw.push_back(gateway::SerializeRequest(wr.request, /*keep_alive=*/true));
  }
  return raw;
}

}  // namespace

int main() {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 150;
  const std::vector<std::string> crawl = SerializeCrawl(256, /*seed=*/2015);

  bench::Table table(
      {"Server", "Workers", "Joza", "QPS", "p50 ms", "p99 ms", "Fail"});

  // --- Baseline: the seed's single-threaded HTTP/1.0 server --------------
  double baseline_qps = 0;
  {
    auto app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*app);
    app->SetQueryGate(joza.MakeGate());
    webapp::HttpServer server(*app);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "baseline start failed: %s\n",
                   port.status().ToString().c_str());
      return 1;
    }
    RunResult r = DriveClients(kClients, kPerClient, [&](std::size_t c) {
      return [&, c](std::size_t i) {
        // HTTP/1.0 model: fresh connection per request.
        auto resp = webapp::FetchRaw(
            port.value(), crawl[(c * kPerClient + i) % crawl.size()]);
        return resp.ok();
      };
    });
    baseline_qps = r.qps();
    table.AddRow({"http/1.0 seed", "1", "yes", bench::Num(r.qps(), 0),
                  bench::Num(r.p50_ms, 3), bench::Num(r.p99_ms, 3),
                  std::to_string(r.failures)});
    server.Stop();
    app->SetQueryGate(nullptr);
  }

  // --- Gateway at increasing worker counts, shared Joza engine -----------
  double gateway8_qps = 0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    auto proto = attack::MakeTestbed();
    core::JozaConfig config;
    config.cache_capacity = 1 << 16;
    core::Joza joza = core::Joza::Install(*proto, config);
    gateway::GatewayConfig gcfg;
    gcfg.workers = workers;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                  gcfg);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "gateway start failed\n");
      return 1;
    }
    RunResult r = DriveClients(kClients, kPerClient, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        auto resp =
            conn->RoundTrip(crawl[(c * kPerClient + i) % crawl.size()]);
        return resp.ok();
      };
    });
    if (workers == 8) gateway8_qps = r.qps();
    table.AddRow({"gateway", std::to_string(workers), "yes",
                  bench::Num(r.qps(), 0), bench::Num(r.p50_ms, 3),
                  bench::Num(r.p99_ms, 3), std::to_string(r.failures)});
    server.Stop();
  }

  // --- Gateway without Joza: the wire/threading floor ---------------------
  {
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); },
                                  nullptr, gcfg);
    auto port = server.Start();
    if (!port.ok()) return 1;
    RunResult r = DriveClients(kClients, kPerClient, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        auto resp =
            conn->RoundTrip(crawl[(c * kPerClient + i) % crawl.size()]);
        return resp.ok();
      };
    });
    table.AddRow({"gateway", "8", "no", bench::Num(r.qps(), 0),
                  bench::Num(r.p50_ms, 3), bench::Num(r.p99_ms, 3),
                  std::to_string(r.failures)});
    server.Stop();
  }

  table.Print("Gateway scaling (8 keep-alive clients, crawl workload)");
  std::printf("\nGateway x8 vs single-threaded HTTP/1.0 baseline: %.2fx\n",
              gateway8_qps / baseline_qps);

  // --- Snapshot churn: lock-free readers vs RCU ruleset swaps -------------
  // Same 8-worker gateway, same traffic, run twice: once read-only and once
  // with a background thread swapping ruleset snapshots the whole time.
  // With a lock-free analyze path the readers should barely notice the
  // churn; this doubles as the CI regression gate for the RCU design.
  auto churn_pass = [&](bool churn) -> std::pair<RunResult, std::size_t> {
    auto proto = attack::MakeTestbed();
    core::JozaConfig config;
    config.cache_capacity = 1 << 16;
    core::Joza joza = core::Joza::Install(*proto, config);
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                  gcfg);
    auto port = server.Start();
    if (!port.ok()) {
      std::fprintf(stderr, "churn gateway start failed\n");
      std::exit(1);
    }
    std::atomic<bool> stop{false};
    std::thread churner;
    if (churn) {
      churner = std::thread([&] {
        std::size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          joza.OnSourcesChanged(
              {{"churn.php",
                "$q = 'SELECT col" + std::to_string(i++) + " FROM t';"}});
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    RunResult r = DriveClients(kClients, kPerClient, [&](std::size_t c) {
      auto conn = std::make_shared<gateway::KeepAliveClient>(port.value());
      return [&, conn, c](std::size_t i) {
        auto resp =
            conn->RoundTrip(crawl[(c * kPerClient + i) % crawl.size()]);
        return resp.ok();
      };
    });
    stop.store(true);
    if (churner.joinable()) churner.join();
    const std::size_t swaps = joza.stats().ruleset_swaps;
    server.Stop();
    return {r, swaps};
  };
  const auto [read_only, ro_swaps] = churn_pass(false);
  const auto [churned, churn_swaps] = churn_pass(true);

  bench::Table churn_table(
      {"Mode", "Swaps", "QPS", "p50 ms", "p99 ms", "Fail"});
  churn_table.AddRow({"read-only", std::to_string(ro_swaps),
                      bench::Num(read_only.qps(), 0),
                      bench::Num(read_only.p50_ms, 3),
                      bench::Num(read_only.p99_ms, 3),
                      std::to_string(read_only.failures)});
  churn_table.AddRow({"snapshot churn", std::to_string(churn_swaps),
                      bench::Num(churned.qps(), 0),
                      bench::Num(churned.p50_ms, 3),
                      bench::Num(churned.p99_ms, 3),
                      std::to_string(churned.failures)});
  churn_table.Print("Reader cost of ruleset snapshot churn (8 workers)");

  // Regression gate: churn may cost readers at most 25% of p99/throughput.
  // The small absolute grace keeps sub-millisecond timer noise from
  // flaking CI while still catching any reader-side lock contention,
  // which shows up as multi-millisecond p99 jumps.
  const double p99_limit = read_only.p99_ms * 1.25 + 0.25;
  const double qps_floor = read_only.qps() * 0.75;
  if (churned.p99_ms > p99_limit) {
    std::fprintf(stderr,
                 "FAIL: churn reader p99 %.3f ms exceeds limit %.3f ms "
                 "(read-only p99 %.3f ms + 25%%)\n",
                 churned.p99_ms, p99_limit, read_only.p99_ms);
    return 1;
  }
  if (churned.qps() < qps_floor) {
    std::fprintf(stderr,
                 "FAIL: churn throughput %.0f qps below floor %.0f qps "
                 "(read-only %.0f qps - 25%%)\n",
                 churned.qps(), qps_floor, read_only.qps());
    return 1;
  }
  std::printf("\nOK: %zu snapshot swaps cost readers <=25%% "
              "(p99 %.3f -> %.3f ms)\n",
              churn_swaps, read_only.p99_ms, churned.p99_ms);

  // --- Verdict consistency: sequential vs concurrent ----------------------
  // Mixed benign/attack traffic must block exactly the same requests no
  // matter how many workers race on the shared engine.
  std::vector<std::pair<std::string, bool>> mixed;  // raw request, is_attack
  for (const attack::WorkloadRequest& wr :
       attack::MakeCrawlWorkload(96, /*seed=*/7)) {
    mixed.push_back(
        {gateway::SerializeRequest(wr.request, /*keep_alive=*/true), false});
  }
  for (const auto* plugin : attack::TestbedPlugins()) {
    // Raw payloads without per-plugin transport encoding: what matters here
    // is that sequential and concurrent serving agree on the SAME bytes,
    // not that every exploit lands.
    attack::Exploit e = attack::OriginalExploit(*plugin);
    mixed.push_back(
        {gateway::SerializeRequest(
             http::Request::Get(plugin->route, {{plugin->param, e.payload}}),
             /*keep_alive=*/true),
         true});
  }

  // Sequential reference: one app, one engine, in-process Handle calls.
  std::size_t sequential_blocked = 0;
  std::size_t sequential_attacks = 0;
  {
    auto app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*app);
    app->SetQueryGate(joza.MakeGate());
    for (const auto& [raw, is_attack] : mixed) {
      auto request = http::ParseRawRequest(raw);
      if (!request.ok()) continue;
      if (app->Handle(request.value()).status == 500) ++sequential_blocked;
    }
    sequential_attacks = joza.stats().attacks_detected;
    app->SetQueryGate(nullptr);
  }

  // Concurrent: same traffic interleaved across 8 client threads.
  std::size_t concurrent_blocked = 0;
  std::size_t concurrent_attacks = 0;
  {
    auto proto = attack::MakeTestbed();
    core::JozaConfig config;
    config.cache_capacity = 1 << 16;
    core::Joza joza = core::Joza::Install(*proto, config);
    gateway::GatewayConfig gcfg;
    gcfg.workers = 8;
    gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                  gcfg);
    auto port = server.Start();
    if (!port.ok()) return 1;
    std::atomic<std::size_t> blocked{0};
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        gateway::KeepAliveClient client(port.value());
        for (std::size_t i = c; i < mixed.size(); i += kClients) {
          auto resp = client.RoundTrip(mixed[i].first);
          if (resp.ok() && resp->find("500") < resp->find("\r\n")) {
            blocked.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    concurrent_blocked = blocked.load();
    concurrent_attacks = joza.stats().attacks_detected;
    server.Stop();
  }

  bench::Table consistency({"Mode", "Blocked (500)", "Attacks detected"});
  consistency.AddRow({"sequential", std::to_string(sequential_blocked),
                      std::to_string(sequential_attacks)});
  consistency.AddRow({"gateway x8", std::to_string(concurrent_blocked),
                      std::to_string(concurrent_attacks)});
  consistency.Print("Verdict consistency, mixed benign/attack traffic");
  if (sequential_blocked != concurrent_blocked) {
    std::fprintf(stderr, "FAIL: concurrent verdicts diverged\n");
    return 1;
  }
  std::printf("\nOK: concurrent verdicts identical to sequential.\n");
  return 0;
}
