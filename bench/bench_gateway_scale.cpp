// Thin wrapper: the gateway-scaling/snapshot-churn workload now lives in
// src/benchkit/suite_churn.cpp. This binary keeps the historical entry
// point and exit-code contract (0 = gates passed, 1 = a gate failed, with
// every failure naming the offending metric and threshold). Run
// `tools/joza_bench --suite churn` for the JSON-emitting, baseline-checked
// version of the same workload.
#include "benchkit/runner.h"

int main(int argc, char** argv) {
  return joza::benchkit::LegacyGateMain("churn", argc, argv);
}
