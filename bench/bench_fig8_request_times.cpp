// Figure 8: read / write / search request times with and without Joza.
//
// Paper shape: reads barely move (query cache), searches cost a bit more
// (dynamic queries, structure-cache hits), writes cost the most
// (textually-new queries).
#include "attack/catalog.h"
#include "perf_util.h"
#include "report.h"

using namespace joza;

int main() {
  using Maker = std::vector<attack::WorkloadRequest> (*)(std::size_t,
                                                         std::uint64_t);
  struct Row {
    const char* name;
    Maker make;
  };
  const Row rows[] = {
      {"Full site crawl (read)", &attack::MakeCrawlWorkload},
      {"Random comment posting (write)", &attack::MakeCommentWorkload},
      {"Random searching", &attack::MakeSearchWorkload},
  };

  bench::Table table({"Request type", "Plain (s)", "With Joza (s)",
                      "Overhead"});
  constexpr int kReps = 8;
  for (const Row& row : rows) {
    const auto make = [&row](std::uint64_t seed) {
      return row.make(300, seed);
    };
    auto plain_app = attack::MakeTestbed();
    auto prot_app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*prot_app);
    prot_app->SetQueryGate(joza.MakeGate());
    bench::ServeOnce(*prot_app, make(1));  // warm caches (unmeasured seed)
    const auto timing =
        bench::MeasurePair(*plain_app, *prot_app, make, kReps, 100);

    table.AddRow({row.name, bench::Num(timing.plain),
                  bench::Num(timing.protected_time),
                  bench::Pct(timing.overhead())});
  }
  table.Print(
      "Figure 8: request times with and without Joza (reads cheapest, "
      "writes costliest)");
  return 0;
}
