// Figure 8: read / write / search request times with and without Joza.
//
// Paper shape: reads barely move (query cache), searches cost a bit more
// (dynamic queries, structure-cache hits), writes cost the most
// (textually-new queries).
#include "attack/catalog.h"
#include "benchkit/serve.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

int main() {
  using Maker = std::vector<attack::WorkloadRequest> (*)(std::size_t,
                                                         std::uint64_t);
  struct Row {
    const char* name;
    Maker make;
  };
  const Row rows[] = {
      {"Full site crawl (read)", &attack::MakeCrawlWorkload},
      {"Random comment posting (write)", &attack::MakeCommentWorkload},
      {"Random searching", &attack::MakeSearchWorkload},
  };

  benchkit::Table table({"Request type", "Plain (s)", "With Joza (s)",
                      "Overhead"});
  // Per-phase NTI matcher breakdown: where the staged pipeline resolved the
  // inputs of each workload's checks (exact scan, seeding+kernel, full DP).
  benchkit::Table matcher({"Request type", "Checks", "Exact hits", "Seed cand",
                        "DP runs", "Staged share"});
  constexpr int kReps = 8;
  for (const Row& row : rows) {
    const auto make = [&row](std::uint64_t seed) {
      return row.make(300, seed);
    };
    auto plain_app = attack::MakeTestbed();
    auto prot_app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*prot_app);
    prot_app->SetQueryGate(joza.MakeGate());
    benchkit::ServeOnce(*prot_app, make(1));  // warm caches (unmeasured seed)
    joza.ResetStats();                     // count only the measured reps
    const auto timing =
        benchkit::MeasurePair(*plain_app, *prot_app, make, kReps, 100);

    table.AddRow({row.name, benchkit::Num(timing.plain),
                  benchkit::Num(timing.protected_time),
                  benchkit::Pct(timing.overhead())});
    const core::JozaStats js = joza.stats();
    const std::size_t decided =
        js.nti_tier_reference + js.nti_tier_bounded + js.nti_tier_staged;
    matcher.AddRow({row.name, std::to_string(js.queries_checked),
                    std::to_string(js.nti_exact_hits),
                    std::to_string(js.nti_seed_candidates),
                    std::to_string(js.nti_dp_runs),
                    decided == 0
                        ? "-"
                        : benchkit::Pct(static_cast<double>(js.nti_tier_staged) /
                                     static_cast<double>(decided))});
  }
  table.Print(
      "Figure 8: request times with and without Joza (reads cheapest, "
      "writes costliest)");
  matcher.Print(
      "Figure 8 breakdown: NTI staged-matcher work per workload (cache hits "
      "skip NTI entirely)");
  return 0;
}
