// Ablation: NTI threshold sensitivity (Section III-A's "Sensitivity to
// Threshold Value" weakness).
//
// Sweeping the difference-ratio threshold shows the bind the paper
// describes: raising it catches more transformed attacks but starts
// flagging benign requests, and *no* value stops the quote-comment evasion
// because the attacker just adds more quotes.
#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "attack/workload.h"
#include "nti/nti.h"
#include "benchkit/metrics.h"

using namespace joza;

int main() {
  auto app = attack::MakeTestbed();
  const auto& catalog = attack::PluginCatalog();

  // Benign (query, inputs) pairs harvested from the workload generators by
  // capturing what the application actually issues.
  struct BenignSample {
    std::string query;
    std::vector<http::Input> inputs;
  };
  std::vector<BenignSample> benign;
  {
    std::vector<attack::WorkloadRequest> reqs;
    for (auto& w : attack::MakeCrawlWorkload(60, 1)) reqs.push_back(w);
    for (auto& w : attack::MakeCommentWorkload(40, 2)) reqs.push_back(w);
    for (auto& w : attack::MakeSearchWorkload(40, 3)) reqs.push_back(w);
    for (const auto& wr : reqs) {
      app->SetQueryGate([&](std::string_view sql, const http::Request& r) {
        benign.push_back({std::string(sql), r.AllInputs()});
        return webapp::GateDecision{};
      });
      app->Handle(wr.request);
    }
    app->SetQueryGate(nullptr);
  }

  benchkit::Table table({"Threshold", "Originals detected", "Evasions detected",
                      "Benign flagged", "Quotes to re-evade"});
  for (double threshold : {0.05, 0.10, 0.20, 0.30, 0.40, 0.45}) {
    nti::NtiConfig cfg;
    cfg.threshold = threshold;
    nti::NtiAnalyzer nti(cfg);

    int originals = 0;
    int evasions_detected = 0;
    int evadable = 0;
    for (const attack::PluginSpec& p : catalog) {
      attack::Exploit orig = attack::OriginalExploit(p);
      auto detects = [&](const std::string& payload) {
        return nti
            .Analyze(attack::QueryFor(p, payload),
                     attack::InputsFor(p, payload))
            .attack_detected;
      };
      if (detects(orig.payload)) ++originals;
      // Mutations crafted against the 0.20 reference threshold: a higher
      // threshold catches some of them...
      nti::NtiConfig reference;
      attack::NtiMutation m = attack::MutateForNtiEvasion(p, orig, reference);
      if (m.possible && m.technique != "transport-encoding") {
        ++evadable;
        if (detects(m.exploit.payload)) ++evasions_detected;
      }
    }

    int benign_flagged = 0;
    for (const BenignSample& s : benign) {
      if (nti.Analyze(s.query, s.inputs).attack_detected) ++benign_flagged;
    }

    // ...but the attacker recalibrates: quotes needed against THIS
    // threshold for a 30-byte payload (always finite below 0.5).
    std::size_t base = 34;
    std::size_t quotes =
        threshold >= 0.5
            ? 0
            : static_cast<std::size_t>(threshold * base / (1 - 2 * threshold)) +
                  1;
    table.AddRow({benchkit::Num(threshold, 2),
                  std::to_string(originals) + "/" +
                      std::to_string(catalog.size()),
                  std::to_string(evasions_detected) + "/" +
                      std::to_string(evadable),
                  std::to_string(benign_flagged) + "/" +
                      std::to_string(benign.size()),
                  std::to_string(quotes)});
  }
  table.Print(
      "Ablation: NTI threshold sweep (evasions were tuned for t=0.20; the "
      "last column shows the attacker's trivial re-tune)");
  return 0;
}
