// Section VI-C: estimating the cost of the user-level daemon design.
//
// The paper estimates that shipping PTI as a PHP extension (no daemon
// spawn, no pipe IPC) would cost only 1.7% even at 50% writes. Here the
// "extension" tier is the in-process analyzer, and the daemon tier routes
// every uncached PTI analysis through the persistent daemon's pipes.
#include "attack/catalog.h"
#include "ipc/daemon.h"
#include "benchkit/serve.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

int main() {
  const auto make = [](std::uint64_t seed) {
    return attack::MakeMixedWorkload(400, 0.5, seed);
  };
  constexpr int kReps = 6;

  auto app = attack::MakeTestbed();
  auto fragments = php::FragmentSet::FromSources(app->sources());

  // The estimate isolates the daemon's spawn/IPC cost, so the structure
  // cache is off: dynamic (write) queries must actually reach the PTI
  // backend on every request, as they did in the paper's measurement.
  core::JozaConfig jc;
  jc.structure_cache = false;

  // "Extension": in-process PTI (the default backend).
  double plain, ext_time;
  {
    auto plain_app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*app, jc);
    app->SetQueryGate(joza.MakeGate());
    benchkit::ServeOnce(*app, make(1));
    const auto timing = benchkit::MeasurePair(*plain_app, *app, make, kReps, 900);
    plain = timing.plain;
    ext_time = timing.protected_time;
    app->SetQueryGate(nullptr);
  }

  // Daemon: uncached analyses cross the pipe to the persistent daemon.
  double daemon_time;
  {
    auto plain_app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*app, jc);
    ipc::DaemonClient client(ipc::DaemonClient::Mode::kPersistent, fragments);
    client.Ping();
    joza.SetPtiBackend(client.AsPtiBackend());
    app->SetQueryGate(joza.MakeGate());
    benchkit::ServeOnce(*app, make(1));
    const auto timing = benchkit::MeasurePair(*plain_app, *app, make, kReps, 900);
    daemon_time = timing.protected_time;
    app->SetQueryGate(nullptr);
  }

  benchkit::Table table({"Deployment", "Time (s)", "Overhead vs plain",
                      "Paper (50% writes)"});
  table.AddRow({"No protection", benchkit::Num(plain), "-", "-"});
  table.AddRow({"PTI as extension (in-process)", benchkit::Num(ext_time),
                benchkit::Pct(benchkit::Overhead(plain, ext_time)), "1.7%"});
  table.AddRow({"PTI via user-level daemon", benchkit::Num(daemon_time),
                benchkit::Pct(benchkit::Overhead(plain, daemon_time)), "8.96%"});
  table.Print(
      "Section VI-C: extension vs user-level daemon deployment estimate");
  return 0;
}
