// Ablation: the two PTI caches — hit rates and how many full PTI analyses
// each configuration avoids on a realistic mixed workload.
#include "attack/catalog.h"
#include "benchkit/serve.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

int main() {
  struct Config {
    const char* name;
    bool query_cache;
    bool structure_cache;
  };
  const Config configs[] = {
      {"no caches", false, false},
      {"query cache only", true, false},
      {"structure cache only", false, true},
      {"both caches", true, true},
  };

  const auto workload = attack::MakeMixedWorkload(400, 0.3, 13);

  benchkit::Table table({"Configuration", "Queries", "Query-cache hits",
                      "Structure hits", "Full PTI runs", "Time (s)"});
  for (const Config& cfg : configs) {
    auto app = attack::MakeTestbed();
    core::JozaConfig jc;
    jc.query_cache = cfg.query_cache;
    jc.structure_cache = cfg.structure_cache;
    core::Joza joza = core::Joza::Install(*app, jc);
    app->SetQueryGate(joza.MakeGate());
    const double secs = benchkit::ServeOnce(*app, workload);
    const core::JozaStats& s = joza.stats();
    table.AddRow({cfg.name, std::to_string(s.queries_checked),
                  std::to_string(s.query_cache_hits),
                  std::to_string(s.structure_cache_hits),
                  std::to_string(s.pti_full_runs), benchkit::Num(secs)});
  }
  table.Print(
      "Ablation: PTI cache tiers on a 30%-write workload "
      "(structure cache absorbs the writes the query cache cannot)");
  return 0;
}
