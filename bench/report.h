// Console table rendering shared by the reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace joza::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = headers_[i].size();
    }
  }

  void AddRow(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print(const std::string& title) const {
    std::printf("\n=== %s ===\n", title.c_str());
    PrintRow(headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) sep += "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
    std::fflush(stdout);
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += " " + cells[i] + std::string(widths_[i] - cells[i].size(), ' ') +
              " ";
      if (i + 1 < cells.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

inline std::string Pct(double fraction, int decimals = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

inline std::string Num(double v, int decimals = 4) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace joza::bench
