// Table V: PTI overhead on read vs write requests across cache tiers.
//
// Deployment matches the paper's: PTI analysis runs in the user-level
// daemon, so every *uncached* query pays a pipe round-trip. The query
// cache absorbs reads (constant query texts); writes are textually new on
// every request and only the structure cache (same INSERT shape, data
// nodes blanked) can absorb them — hence the paper's 34% -> 12% drop.
// Absolute percentages differ from the paper (the substrate is an
// in-memory simulator, not Apache+MySQL); the reproduced result is the
// ordering: read << write, and write falling sharply with the structure
// cache.
#include "attack/catalog.h"
#include "ipc/daemon.h"
#include "benchkit/serve.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

namespace {

struct Config {
  const char* name;
  bool query_cache;
  bool structure_cache;
};

template <typename MakeWorkload>
double MeasureOverhead(MakeWorkload&& make, const Config& cfg) {
  constexpr int kReps = 8;
  auto plain_app = attack::MakeTestbed();
  auto prot_app = attack::MakeTestbed();

  core::JozaConfig jc;
  jc.enable_nti = false;  // Table V isolates the PTI component
  jc.query_cache = cfg.query_cache;
  jc.structure_cache = cfg.structure_cache;
  core::Joza joza = core::Joza::Install(*prot_app, jc);
  ipc::DaemonClient daemon(
      ipc::DaemonClient::Mode::kPersistent,
      php::FragmentSet::FromSources(prot_app->sources()));
  daemon.Ping();  // spawn before measuring
  joza.SetPtiBackend(daemon.AsPtiBackend());
  prot_app->SetQueryGate(joza.MakeGate());
  // Warm-up on an unmeasured workload so read caches reach steady state,
  // as in the paper's crawl; the measured workloads are fresh.
  benchkit::ServeOnce(*prot_app, make(1));
  const auto timing =
      benchkit::MeasurePair(*plain_app, *prot_app, make, kReps, 1000);
  prot_app->SetQueryGate(nullptr);
  return timing.overhead();
}

}  // namespace

int main() {
  const auto reads = [](std::uint64_t seed) {
    return attack::MakeCrawlWorkload(300, seed);
  };
  const auto writes = [](std::uint64_t seed) {
    return attack::MakeCommentWorkload(300, seed);
  };

  const Config configs[] = {
      {"no cache", false, false},
      {"query cache", true, false},
      {"query + structure cache", true, true},
  };

  benchkit::Table table({"PTI configuration", "Read overhead", "Write overhead",
                      "Paper read", "Paper write"});
  const char* paper_read[] = {"(high)", "<4%", "<4%"};
  const char* paper_write[] = {"(high)", "34%", "12%"};
  int i = 0;
  for (const Config& cfg : configs) {
    double r = MeasureOverhead(reads, cfg);
    double w = MeasureOverhead(writes, cfg);
    table.AddRow({cfg.name, benchkit::Pct(r), benchkit::Pct(w), paper_read[i],
                  paper_write[i]});
    ++i;
  }
  table.Print(
      "Table V: PTI (daemon-deployed) overhead by request type and cache "
      "tier");
  return 0;
}
