// Table VI: overall Joza overhead across read/write workload mixes.
//
// Paper: 50/50 -> 8.96%, 10/90 -> 5.16%, 5/95 -> 4.53%, 1/99 -> 4.03%.
// The reproduced claim is the monotone shape: overhead grows with the
// write fraction, because writes are textually-unique queries that miss
// the query cache.
#include "attack/catalog.h"
#include "ipc/daemon.h"
#include "benchkit/serve.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

int main() {
  struct Mix {
    double write_fraction;
    const char* label;
    const char* paper;
  };
  const Mix mixes[] = {
      {0.50, "50% writes / 50% reads", "8.96%"},
      {0.10, "10% writes / 90% reads", "5.16%"},
      {0.05, " 5% writes / 95% reads", "4.53%"},
      {0.01, " 1% writes / 99% reads", "4.03%"},
  };

  benchkit::Table table({"Workload", "Plain time (s)", "Protected time (s)",
                      "Overhead", "Paper overhead"});
  for (const Mix& mix : mixes) {
    const auto make = [&mix](std::uint64_t seed) {
      return attack::MakeMixedWorkload(600, mix.write_fraction, seed);
    };
    constexpr int kReps = 8;

    auto plain_app = attack::MakeTestbed();
    auto prot_app = attack::MakeTestbed();

    // The paper's deployment: PTI in the user-level daemon, NTI in-process.
    core::Joza joza = core::Joza::Install(*prot_app);
    ipc::DaemonClient daemon(
        ipc::DaemonClient::Mode::kPersistent,
        php::FragmentSet::FromSources(prot_app->sources()));
    daemon.Ping();
    joza.SetPtiBackend(daemon.AsPtiBackend());
    prot_app->SetQueryGate(joza.MakeGate());
    benchkit::ServeOnce(*prot_app, make(1));  // cache warm-up (unmeasured seed)

    const auto timing =
        benchkit::MeasurePair(*plain_app, *prot_app, make, kReps, 500);
    prot_app->SetQueryGate(nullptr);

    table.AddRow({mix.label, benchkit::Num(timing.plain),
                  benchkit::Num(timing.protected_time),
                  benchkit::Pct(timing.overhead()), mix.paper});
  }
  table.Print("Table VI: Joza overhead on different workloads");
  return 0;
}
