// Figure 7: PTI per-request performance breakdown — unoptimized
// (fresh daemon process per analysis, rebuilding the fragment index each
// time) vs the optimized persistent daemon.
//
// Paper: the unoptimized bar is dominated by PTI processing; the optimized
// daemon cuts PTI processing time by ~66%.
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "ipc/daemon.h"
#include "phpsrc/fragments.h"
#include "benchkit/metrics.h"
#include "util/stopwatch.h"

using namespace joza;

namespace {

// Queries a typical page load issues (boilerplate + endpoint reads).
std::vector<std::string> PageQueries() {
  return {
      "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1",
      "SELECT option_value FROM wp_options WHERE option_name = 'template' LIMIT 1",
      "SELECT id, login FROM wp_users WHERE id = 1",
      "SELECT COUNT(*) FROM wp_posts WHERE post_status = 'publish'",
      "SELECT id, title FROM wp_posts ORDER BY id DESC LIMIT 10",
      "SELECT id, title, body FROM wp_posts WHERE id = 7",
  };
}

double MeasurePerQuery(ipc::DaemonClient& client,
                       const std::vector<std::string>& queries, int rounds) {
  Stopwatch watch;
  int n = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const std::string& q : queries) {
      auto v = client.Analyze(q);
      if (!v.ok()) return -1;
      ++n;
    }
  }
  return watch.ElapsedSeconds() / n * 1e3;  // ms per query
}

}  // namespace

int main() {
  auto app = attack::MakeTestbed();
  auto fragments = php::FragmentSet::FromSources(app->sources());
  const auto queries = PageQueries();

  // Unoptimized: new daemon process per query (3 rounds — it's slow).
  ipc::DaemonClient spawner(ipc::DaemonClient::Mode::kSpawnPerRequest,
                            fragments);
  const double unopt_ms = MeasurePerQuery(spawner, queries, 3);

  // Optimized: persistent daemon reused across queries.
  ipc::DaemonClient persistent(ipc::DaemonClient::Mode::kPersistent,
                               fragments);
  persistent.Ping();  // spawn outside the measurement
  const double opt_ms = MeasurePerQuery(persistent, queries, 50);
  persistent.Shutdown();

  // In-process analysis cost (the pure matching work, no IPC).
  pti::PtiAnalyzer inproc(fragments);
  Stopwatch watch;
  int n = 0;
  for (int r = 0; r < 50; ++r) {
    for (const std::string& q : queries) {
      inproc.Analyze(q);
      ++n;
    }
  }
  const double match_ms = watch.ElapsedSeconds() / n * 1e3;

  benchkit::Table table({"PTI tier", "ms / query", "Breakdown"});
  table.AddRow({"Unoptimized (process per query)", benchkit::Num(unopt_ms, 3),
                "spawn + index build + IPC + match"});
  table.AddRow({"Optimized (persistent daemon)", benchkit::Num(opt_ms, 3),
                "IPC + match"});
  table.AddRow({"  of which matching (in-process)", benchkit::Num(match_ms, 3),
                "match only"});
  table.Print("Figure 7: PTI per-request breakdown");

  const double reduction = (unopt_ms - opt_ms) / unopt_ms;
  benchkit::Table summary({"Metric", "Measured", "Paper"});
  summary.AddRow({"Daemon processing-time reduction", benchkit::Pct(reduction, 1),
                  "66%"});
  summary.AddRow({"Per-query daemon spawn overhead (ms)",
                  benchkit::Num(unopt_ms - opt_ms, 3), "(dominant)"});
  summary.Print("Figure 7 (derived): optimization effect");
  return 0;
}
