// Table VII: WordPress.com traffic statistics and the derived read/write
// mix. Paper conclusion: writes are < 1% of requests, so real deployments
// sit at the low end of Table VI (< 4% overhead on average).
//
// The absolute yearly numbers are synthesized from public WordPress.com
// activity reports (the original table's values are not in the paper text
// available to us); the derived write fraction is the experiment's output.
#include "attack/workload.h"
#include "benchkit/metrics.h"

int main() {
  using namespace joza;
  benchkit::Table table({"Year", "New posts (M)", "New pages (M)",
                      "New comments (M)", "RPC posts (M)", "Page views (M)"});
  for (const attack::WpComYearStats& y : attack::WordpressComStats()) {
    table.AddRow({std::to_string(y.year), benchkit::Num(y.new_posts_millions, 0),
                  benchkit::Num(y.new_pages_millions, 1),
                  benchkit::Num(y.new_comments_millions, 0),
                  benchkit::Num(y.rpc_posts_millions, 1),
                  benchkit::Num(y.page_views_millions, 0)});
  }
  table.Print("Table VII: WordPress.com activity (synthesized per-year stats)");

  const double wf = attack::WpComWriteFraction();
  benchkit::Table derived({"Derived quantity", "Value", "Paper"});
  derived.AddRow({"Write fraction of all requests", benchkit::Pct(wf),
                  "< 1%"});
  derived.AddRow({"Expected Joza overhead (Table VI band)",
                  wf < 0.01 ? "< the 1%-writes row" : "see Table VI",
                  "< 4%"});
  derived.Print("Table VII (derived): real-world read/write mix");
  return 0;
}
