// Table I: classification of WP-SQLI-LAB attack types.
//
// Paper: Union Based 15, Standard Blind 17, Double Blind 14, Tautology 4.
#include <map>

#include "attack/catalog.h"
#include "benchkit/metrics.h"

int main() {
  using namespace joza;
  std::map<attack::AttackType, int> counts;
  for (const attack::PluginSpec* p : attack::TestbedPlugins()) {
    ++counts[p->type];
  }
  benchkit::Table table({"Attack Type", "No. of Plugins", "Paper"});
  table.AddRow({"Union Based",
                std::to_string(counts[attack::AttackType::kUnionBased]), "15"});
  table.AddRow({"Standard Blind",
                std::to_string(counts[attack::AttackType::kStandardBlind]),
                "17"});
  table.AddRow({"Double Blind",
                std::to_string(counts[attack::AttackType::kDoubleBlind]),
                "14"});
  table.AddRow({"Tautology",
                std::to_string(counts[attack::AttackType::kTautology]), "4"});
  table.Print("Table I: Classification of WP-SQLI-LAB attack types");
  return 0;
}
