// Ablation: Levenshtein implementation tiers (Section VI-B). The paper
// uses the native levenshtein() for short inputs and a linear-memory
// variant for long ones; the banded variant with early exit is what makes
// NTI's bounded search cheap on non-matching inputs.
#include <benchmark/benchmark.h>

#include "match/levenshtein.h"
#include "match/substring.h"
#include "util/rng.h"

using namespace joza;

namespace {

std::pair<std::string, std::string> MakeInputs(std::size_t n) {
  Rng rng(7 + n);
  std::string a = rng.NextToken(n);
  std::string b = a;
  // ~10% random edits.
  for (std::size_t i = 0; i < n / 10 + 1; ++i) {
    b[rng.NextBelow(b.size())] = 'Z';
  }
  return {a, b};
}

void ConfigureArgs(benchmark::internal::Benchmark* b) {
  b->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
}

void BM_LevenshteinFull(benchmark::State& state) {
  auto [a, b] = MakeInputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::LevenshteinFull(a, b));
  }
}
BENCHMARK(BM_LevenshteinFull)->Apply(ConfigureArgs);

void BM_LevenshteinTwoRow(benchmark::State& state) {
  auto [a, b] = MakeInputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::LevenshteinTwoRow(a, b));
  }
}
BENCHMARK(BM_LevenshteinTwoRow)->Apply(ConfigureArgs);

void BM_LevenshteinBanded(benchmark::State& state) {
  auto [a, b] = MakeInputs(static_cast<std::size_t>(state.range(0)));
  const std::size_t bound = static_cast<std::size_t>(state.range(0)) / 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::LevenshteinBanded(a, b, bound));
  }
}
BENCHMARK(BM_LevenshteinBanded)->Apply(ConfigureArgs);

// NTI's actual workload: input-vs-query substring distance. The bounded
// variant prunes hopeless inputs almost immediately.
void BM_SubstringUnbounded(benchmark::State& state) {
  Rng rng(3);
  std::string query =
      "SELECT * FROM wp_posts WHERE id = 17 AND post_status = 'publish' "
      "ORDER BY id DESC LIMIT " +
      rng.NextToken(static_cast<std::size_t>(state.range(0)));
  std::string input = rng.NextToken(24);  // unrelated input
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::BestSubstringMatch(query, input));
  }
}
BENCHMARK(BM_SubstringUnbounded)->Arg(64)->Arg(512);

void BM_SubstringBounded(benchmark::State& state) {
  Rng rng(3);
  std::string query =
      "SELECT * FROM wp_posts WHERE id = 17 AND post_status = 'publish' "
      "ORDER BY id DESC LIMIT " +
      rng.NextToken(static_cast<std::size_t>(state.range(0)));
  std::string input = rng.NextToken(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::BestSubstringMatchBounded(query, input, 6));
  }
}
BENCHMARK(BM_SubstringBounded)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
