// Extraction economics per channel class: how many requests the automated
// tool needs to pull an 11-character secret through each observable
// channel (Section V's union / standard-blind / double-blind taxonomy),
// and what the attacker gets once Joza is installed.
#include "attack/extractor.h"
#include "core/joza.h"
#include "benchkit/metrics.h"

using namespace joza;

namespace {

const attack::PluginSpec& Find(const char* name) {
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    if (p.name == name) return p;
  }
  std::abort();
}

}  // namespace

int main() {
  const char* targets[] = {"Count per Day", "Eventify", "MyStat",
                           "Advertiser"};

  benchkit::Table table({"Target", "Channel", "Requests (open)",
                      "Secret recovered", "Requests (Joza)",
                      "Recovered under Joza"});
  for (const char* name : targets) {
    const attack::PluginSpec& plugin = Find(name);

    auto open_app = attack::MakeTestbed();
    attack::Extractor open_ex(*open_app, plugin);
    auto open = open_ex.ExtractSecret();

    auto prot_app = attack::MakeTestbed();
    core::Joza joza = core::Joza::Install(*prot_app);
    prot_app->SetQueryGate(joza.MakeGate());
    attack::Extractor prot_ex(*prot_app, plugin);
    auto prot = prot_ex.ExtractSecret();
    prot_app->SetQueryGate(nullptr);

    table.AddRow({plugin.name, open.technique,
                  std::to_string(open.requests_used),
                  open.success ? "\"" + open.extracted + "\"" : "no",
                  std::to_string(prot.requests_used),
                  prot.success ? "\"" + prot.extracted + "\"" : "nothing"});
  }
  table.Print(
      "Extraction cost per channel (11-char secret), open vs Joza-protected");
  return 0;
}
