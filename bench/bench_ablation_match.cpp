// Ablation: PTI matching strategy — Aho-Corasick automaton vs the paper's
// per-fragment scan (with and without the MRU + parse-first optimizations),
// as the fragment vocabulary grows.
#include <benchmark/benchmark.h>

#include "attack/catalog.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "util/rng.h"

using namespace joza;

namespace {

php::FragmentSet MakeVocabulary(std::size_t extra_fragments) {
  auto app = attack::MakeTestbed();
  php::FragmentSet set = php::FragmentSet::FromSources(app->sources());
  Rng rng(42);
  for (std::size_t i = 0; i < extra_fragments; ++i) {
    set.AddRaw("SELECT " + rng.NextToken(8) + " FROM " + rng.NextToken(8) +
               " WHERE " + rng.NextToken(6) + " = ");
  }
  return set;
}

const char* kBenignQuery =
    "SELECT title, views FROM wp_posts WHERE id = 7";
const char* kAttackQuery =
    "SELECT title, views FROM wp_posts WHERE id = -1 "
    "union select login, pass from wp_users";

void ConfigureArgs(benchmark::internal::Benchmark* b) {
  b->Arg(100)->Arg(400)->Arg(1600);
}

void BM_PtiAhoCorasick(benchmark::State& state) {
  pti::PtiConfig cfg;
  cfg.use_aho_corasick = true;
  pti::PtiAnalyzer pti(MakeVocabulary(static_cast<std::size_t>(state.range(0))),
                       cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pti.Analyze(kBenignQuery).attack_detected);
    benchmark::DoNotOptimize(pti.Analyze(kAttackQuery).attack_detected);
  }
}
BENCHMARK(BM_PtiAhoCorasick)->Apply(ConfigureArgs);

void BM_PtiNaiveScanOptimized(benchmark::State& state) {
  pti::PtiConfig cfg;
  cfg.use_aho_corasick = false;
  cfg.parse_first = true;
  cfg.mru_size = 64;
  pti::PtiAnalyzer pti(MakeVocabulary(static_cast<std::size_t>(state.range(0))),
                       cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pti.Analyze(kBenignQuery).attack_detected);
    benchmark::DoNotOptimize(pti.Analyze(kAttackQuery).attack_detected);
  }
}
BENCHMARK(BM_PtiNaiveScanOptimized)->Apply(ConfigureArgs);

void BM_PtiNaiveScanUnoptimized(benchmark::State& state) {
  pti::PtiConfig cfg;
  cfg.use_aho_corasick = false;
  cfg.parse_first = false;
  cfg.mru_size = 0;
  pti::PtiAnalyzer pti(MakeVocabulary(static_cast<std::size_t>(state.range(0))),
                       cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pti.Analyze(kBenignQuery).attack_detected);
    benchmark::DoNotOptimize(pti.Analyze(kAttackQuery).attack_detected);
  }
}
BENCHMARK(BM_PtiNaiveScanUnoptimized)->Apply(ConfigureArgs);

// Index construction cost (paid per daemon spawn in the unoptimized tier).
void BM_PtiIndexBuild(benchmark::State& state) {
  auto vocab = MakeVocabulary(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pti::PtiAnalyzer pti(vocab);
    benchmark::DoNotOptimize(pti.fragments().size());
  }
}
BENCHMARK(BM_PtiIndexBuild)->Apply(ConfigureArgs);

}  // namespace

BENCHMARK_MAIN();
