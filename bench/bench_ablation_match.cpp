// Thin wrapper: the matcher-ablation workload now lives in
// src/benchkit/suite_smoke.cpp. This binary keeps the historical entry
// point and exit-code contract (0 = gates passed, 1 = a gate failed, with
// every failure naming the offending metric and threshold). Run
// `tools/joza_bench --suite smoke` for the JSON-emitting, baseline-checked
// version of the same workload.
#include "benchkit/runner.h"

int main(int argc, char** argv) {
  return joza::benchkit::LegacyGateMain("smoke", argc, argv);
}
