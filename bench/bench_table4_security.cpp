// Table IV: Joza security effectiveness on the full testbed — per plugin:
// NTI vs original and NTI-evasion-mutated exploits, PTI vs original and
// Taintless-adapted exploits, and the Joza hybrid end-to-end.
//
// Paper aggregates: NTI original 52/53 (AdRotate's base64 exploit missed),
// NTI mutated 2/53 (51 bypass), PTI original 53/53, PTI mutated 39/53
// (13 testbed plugins + osCommerce bypass), Joza 53/53.
#include <string>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "core/joza.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"
#include "benchkit/metrics.h"

using namespace joza;

namespace {

const char* YesNo(bool b) { return b ? "Yes" : "No"; }

bool CheckBoth(const std::function<bool(const std::string&)>& check,
               const attack::Exploit& e) {
  return check(e.payload) || (e.is_probe_pair && check(e.false_payload));
}

}  // namespace

int main() {
  auto app = attack::MakeTestbed();
  nti::NtiAnalyzer nti_an;
  pti::PtiAnalyzer pti_an(php::FragmentSet::FromSources(app->sources()));
  core::Joza joza = core::Joza::Install(*app);

  benchkit::Table table({"Plugin / Application", "Version", "CVE/OSVDB",
                      "SQL Vulnerability", "NTI Orig", "NTI Mut", "PTI Orig",
                      "PTI Mut", "Joza"});

  int nti_orig = 0, nti_mut = 0, pti_orig = 0, pti_mut = 0, joza_all = 0;
  const auto& catalog = attack::PluginCatalog();

  for (const attack::PluginSpec& p : catalog) {
    auto nti_check = [&](const std::string& payload) {
      return nti_an
          .Analyze(attack::QueryFor(p, payload),
                   attack::InputsFor(p, payload))
          .attack_detected;
    };
    auto pti_check = [&](const std::string& payload) {
      return pti_an.Analyze(attack::QueryFor(p, payload)).attack_detected;
    };

    const attack::Exploit original = attack::OriginalExploit(p);
    const bool d_nti_orig = CheckBoth(nti_check, original);
    const bool d_pti_orig = CheckBoth(pti_check, original);

    attack::NtiMutation mutation =
        attack::MutateForNtiEvasion(p, original, nti_an.config());
    // If no mutation is possible, NTI faces the original exploit.
    const bool d_nti_mut = mutation.possible
                               ? CheckBoth(nti_check, mutation.exploit)
                               : d_nti_orig;

    attack::TaintlessResult taintless =
        attack::RunTaintless(p, pti_an, *app);
    const bool d_pti_mut =
        taintless.success ? CheckBoth(pti_check, taintless.exploit) : true;

    // Joza end-to-end: every variant must fail against the protected app.
    app->SetQueryGate(joza.MakeGate());
    bool joza_blocks = !attack::ExploitSucceeds(*app, p, original);
    if (mutation.possible) {
      joza_blocks =
          joza_blocks && !attack::ExploitSucceeds(*app, p, mutation.exploit);
    }
    if (taintless.success) {
      joza_blocks =
          joza_blocks && !attack::ExploitSucceeds(*app, p, taintless.exploit);
    }
    app->SetQueryGate(nullptr);

    nti_orig += d_nti_orig;
    nti_mut += d_nti_mut;
    pti_orig += d_pti_orig;
    pti_mut += d_pti_mut;
    joza_all += joza_blocks;

    table.AddRow({p.name, p.version, p.advisory,
                  attack::AttackTypeName(p.type), YesNo(d_nti_orig),
                  YesNo(d_nti_mut), YesNo(d_pti_orig), YesNo(d_pti_mut),
                  YesNo(joza_blocks)});
  }

  const std::string n = std::to_string(catalog.size());
  table.AddRow({"TOTAL detected", "", "", "",
                std::to_string(nti_orig) + "/" + n,
                std::to_string(nti_mut) + "/" + n,
                std::to_string(pti_orig) + "/" + n,
                std::to_string(pti_mut) + "/" + n,
                std::to_string(joza_all) + "/" + n});
  table.AddRow({"PAPER", "", "", "", "52/53", "2/53", "53/53", "39/53",
                "53/53"});
  table.Print(
      "Table IV: Joza security effectiveness (original + mutated exploits)");
  return 0;
}
