// Cost-model subsystem: codec round trips, fail-closed loading, and the
// Planner's builtin-parity property — without a model every decision must
// reproduce the legacy hand-tuned heuristics bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "costmodel/calibrate.h"
#include "costmodel/codec.h"
#include "costmodel/costmodel.h"
#include "costmodel/planner.h"
#include "util/rng.h"

namespace joza::costmodel {
namespace {

CostModel PlausibleModel() {
  CostModel m;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    m.stages[i].base_ns = 10.0 + static_cast<double>(i);
    m.stages[i].per_byte_ns = 0.5 + 0.1 * static_cast<double>(i);
  }
  m.calibration_samples = 123;
  return m;
}

std::shared_ptr<const CostModel> Shared(const CostModel& m) {
  return std::make_shared<const CostModel>(m);
}

TEST(Codec, RoundTripPreservesEveryField) {
  const CostModel m = PlausibleModel();
  const std::string image = EncodeCostModel(m);
  auto parsed = ParseCostModel(image);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->calibration_samples, 123u);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(parsed->stages[i].base_ns, m.stages[i].base_ns) << i;
    EXPECT_EQ(parsed->stages[i].per_byte_ns, m.stages[i].per_byte_ns) << i;
  }
  // Canonical encoding: re-encoding the parse yields the same bytes.
  EXPECT_EQ(EncodeCostModel(parsed.value()), image);
}

TEST(Codec, SaveAndLoadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/costmodel_roundtrip.jzcm";
  const CostModel m = PlausibleModel();
  ASSERT_TRUE(SaveCostModel(path, m).ok());
  auto loaded = LoadCostModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeCostModel(loaded.value()), EncodeCostModel(m));
  std::remove(path.c_str());
}

TEST(Codec, MissingFileIsNotFoundAndNotAParseFailure) {
  ResetCodecStats();
  auto loaded = LoadCostModel("/nonexistent/dir/model.jzcm");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  // Absence is the normal uncalibrated state, not a malformed artifact.
  EXPECT_EQ(GetCodecStats().parse_failures, 0u);
}

TEST(Codec, ParseFailureBumpsTheFailClosedCounter) {
  ResetCodecStats();
  EXPECT_FALSE(ParseCostModel("not a cost model").ok());
  EXPECT_FALSE(ParseCostModel("").ok());
  const CodecStats stats = GetCodecStats();
  EXPECT_EQ(stats.parse_failures, 2u);
  EXPECT_EQ(stats.parses_ok, 0u);
}

TEST(Validate, RejectsNonFiniteNegativeAndImplausible) {
  EXPECT_TRUE(ValidateModel(PlausibleModel()).ok());
  {
    CostModel m = PlausibleModel();
    m.stages[2].base_ns = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    CostModel m = PlausibleModel();
    m.stages[4].per_byte_ns = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    CostModel m = PlausibleModel();
    m.stages[0].base_ns = -1.0;
    EXPECT_FALSE(ValidateModel(m).ok());
  }
  {
    CostModel m = PlausibleModel();
    m.stages[6].per_byte_ns = kMaxPlausibleNs * 2;
    EXPECT_FALSE(ValidateModel(m).ok());
  }
}

// ---------------------------------------------------------------------------
// Builtin parity: a Planner without a model must reproduce the legacy
// hand-tuned decision rules exactly, over the whole feature space.
// ---------------------------------------------------------------------------

TEST(Planner, BuiltinExactStageMatchesLegacyFormulaExhaustively) {
  const Planner planner;
  EXPECT_FALSE(planner.calibrated());
  Rng rng(2015);
  for (int trial = 0; trial < 20000; ++trial) {
    ExactStageFeatures f;
    f.input_count = rng.NextBelow(32);
    f.total_value_bytes = rng.NextBelow(4096);
    f.query_bytes = rng.NextBelow(8192);
    const bool legacy =
        f.input_count >= kDefaultMultiPatternMinInputs &&
        f.input_count * f.query_bytes >=
            kDefaultAutomatonAmortization * f.total_value_bytes;
    EXPECT_EQ(planner.PlanExactStage(f) == ExactStrategy::kAutomaton, legacy)
        << "inputs=" << f.input_count << " value=" << f.total_value_bytes
        << " query=" << f.query_bytes;
  }
}

TEST(Planner, BuiltinBatchScopeMatchesLegacyCutoff) {
  const Planner planner;
  EXPECT_FALSE(planner.PlanBatchScope(0));
  EXPECT_FALSE(planner.PlanBatchScope(1));
  for (std::size_t n = kDefaultBatchScopeMinRequests; n < 64; ++n) {
    EXPECT_TRUE(planner.PlanBatchScope(n)) << n;
  }
}

TEST(Planner, CalibratedBatchScopeAgreesWithBuiltinForValidModels) {
  // Non-negative coefficients (ValidateModel's invariant) make the shared
  // build mathematically no worse for every n >= 2, so a calibrated
  // planner's admission decision coincides with builtin behavior.
  const Planner builtin;
  const Planner calibrated(Shared(PlausibleModel()));
  EXPECT_TRUE(calibrated.calibrated());
  for (std::size_t n = 0; n < 64; ++n) {
    EXPECT_EQ(calibrated.PlanBatchScope(n), builtin.PlanBatchScope(n)) << n;
  }
}

TEST(Planner, SingleInputNeverBuildsAnAutomaton) {
  // Under any model — even one claiming the automaton is free.
  CostModel free_automaton = PlausibleModel();
  free_automaton.curve(Stage::kAcBuild) = {0.0, 0.0};
  free_automaton.curve(Stage::kAcScan) = {0.0, 0.0};
  for (const Planner& p :
       {Planner(), Planner(Shared(free_automaton))}) {
    ExactStageFeatures f;
    f.input_count = 1;
    f.total_value_bytes = 8;
    f.query_bytes = 1 << 20;
    EXPECT_EQ(p.PlanExactStage(f), ExactStrategy::kPerInputFind);
  }
}

TEST(Planner, CalibratedExactStageFollowsTheCurves) {
  // An expensive automaton forces find; an expensive find forces the
  // automaton (at >= 2 inputs).
  CostModel automaton_costly = PlausibleModel();
  automaton_costly.curve(Stage::kAcBuild) = {1e6, 1e3};
  automaton_costly.curve(Stage::kFind) = {1.0, 0.001};
  CostModel find_costly = PlausibleModel();
  find_costly.curve(Stage::kAcBuild) = {1.0, 0.001};
  find_costly.curve(Stage::kAcScan) = {1.0, 0.001};
  find_costly.curve(Stage::kFind) = {1e6, 1e3};

  ExactStageFeatures f;
  f.input_count = 4;
  f.total_value_bytes = 64;
  f.query_bytes = 256;
  EXPECT_EQ(Planner(Shared(automaton_costly)).PlanExactStage(f),
            ExactStrategy::kPerInputFind);
  EXPECT_EQ(Planner(Shared(find_costly)).PlanExactStage(f),
            ExactStrategy::kAutomaton);
}

TEST(Planner, RulesetPlanStatisticsAndBuiltinStrategy)
{
  const Planner planner;
  const RulesetPlan plan =
      planner.PlanRuleset({2, 3, 8, 20, 40}, /*allow_automaton=*/true);
  EXPECT_TRUE(plan.use_automaton);  // legacy default: automaton serves
  EXPECT_FALSE(plan.calibrated);
  EXPECT_EQ(plan.vocabulary, 5u);
  EXPECT_EQ(plan.total_pattern_bytes, 73u);
  EXPECT_EQ(plan.min_pattern_len, 2u);
  EXPECT_EQ(plan.max_pattern_len, 40u);
  EXPECT_EQ(plan.length_histogram[0], 1u);  // 1-2
  EXPECT_EQ(plan.length_histogram[1], 1u);  // 3-4
  EXPECT_EQ(plan.length_histogram[2], 1u);  // 5-8
  EXPECT_EQ(plan.length_histogram[3], 0u);  // 9-16
  EXPECT_EQ(plan.length_histogram[4], 1u);  // 17-32
  EXPECT_EQ(plan.length_histogram[5], 1u);  // 33+
}

TEST(Planner, RulesetAblationOverrideBeatsAnyModel) {
  // use_aho_corasick = false is an explicit ablation: the naive scan is
  // forced even under a model that says the automaton is free.
  CostModel free_automaton = PlausibleModel();
  free_automaton.curve(Stage::kAcScan) = {0.0, 0.0};
  for (const Planner& p :
       {Planner(), Planner(Shared(free_automaton))}) {
    EXPECT_FALSE(
        p.PlanRuleset({4, 8, 12}, /*allow_automaton=*/false).use_automaton);
  }
}

TEST(Planner, CalibratedRulesetPlanFlipsWithTheCurves) {
  CostModel scan_cheap = PlausibleModel();
  scan_cheap.curve(Stage::kAcScan) = {1.0, 0.01};
  scan_cheap.curve(Stage::kFind) = {100.0, 1.0};
  const RulesetPlan automaton_plan =
      Planner(Shared(scan_cheap)).PlanRuleset({8, 8, 8, 8}, true);
  EXPECT_TRUE(automaton_plan.use_automaton);
  EXPECT_TRUE(automaton_plan.calibrated);
  EXPECT_GT(automaton_plan.predicted_scan_ns, 0.0);

  CostModel scan_costly = PlausibleModel();
  scan_costly.curve(Stage::kAcScan) = {1e6, 1e3};
  scan_costly.curve(Stage::kFind) = {1.0, 0.001};
  EXPECT_FALSE(
      Planner(Shared(scan_costly)).PlanRuleset({8, 8}, true).use_automaton);
  // An empty vocabulary never elects the automaton under a model.
  EXPECT_FALSE(Planner(Shared(scan_cheap)).PlanRuleset({}, true).use_automaton);
}

TEST(Calibrate, QuickSweepProducesAValidLoadableModel) {
  CalibrationOptions options;
  options.quick = true;
  const CostModel model = Calibrate(options);
  EXPECT_TRUE(ValidateModel(model).ok());
  EXPECT_GT(model.calibration_samples, 0u);
  auto parsed = ParseCostModel(EncodeCostModel(model));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(EncodeCostModel(parsed.value()), EncodeCostModel(model));
}

}  // namespace
}  // namespace joza::costmodel
