// Aho–Corasick vs naive-scan parity: both PTI matchers must return the
// same verdict (and, without the naive path's early exit, the same set of
// positive taint spans) for every query. The automaton is an optimization,
// never a behaviour change — this is the differential check that keeps the
// two implementations honest against each other across the whole attack
// catalog and randomized fragment vocabularies.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "phpsrc/fragments.h"
#include "pti/ruleset.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"
#include "util/rng.h"

namespace joza::pti {
namespace {

std::vector<ByteSpan> Sorted(std::vector<ByteSpan> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const ByteSpan& a, const ByteSpan& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  return spans;
}

std::vector<std::string> UntrustedTexts(const PtiResult& r) {
  std::vector<std::string> texts;
  texts.reserve(r.untrusted_critical_tokens.size());
  for (const sql::Token& t : r.untrusted_critical_tokens) {
    texts.emplace_back(t.text);
  }
  return texts;
}

// Runs both matchers over one query and asserts parity. `full_scan` rulesets
// (parse_first=false) additionally compare the complete span sets; with the
// early exit enabled only the verdict is comparable (the naive path stops
// scanning once every critical token is covered).
void ExpectParity(const Ruleset& rs, const std::string& query) {
  const std::vector<sql::Token> tokens = sql::Lex(query);
  const std::vector<sql::CriticalUnit> units =
      sql::BuildCriticalUnits(tokens, rs.config().strict_tokens);

  const PtiResult aho = AnalyzeAho(rs, query, units);
  const PtiResult naive = AnalyzeNaive(rs, query, units, /*mru=*/nullptr);

  EXPECT_EQ(aho.attack_detected, naive.attack_detected) << query;
  EXPECT_EQ(UntrustedTexts(aho), UntrustedTexts(naive)) << query;
  EXPECT_EQ(aho.ruleset_version, naive.ruleset_version);
  if (!rs.config().parse_first) {
    EXPECT_EQ(Sorted(aho.positive_spans), Sorted(naive.positive_spans))
        << query;
    EXPECT_EQ(aho.hits, naive.hits) << query;
  }
}

PtiConfig FullScanConfig() {
  PtiConfig config;
  config.parse_first = false;
  return config;
}

TEST(PtiParity, AttackCatalogVerdictsAndSpans) {
  auto app = attack::MakeTestbed();
  php::FragmentSet fragments = php::FragmentSet::FromSources(app->sources());
  const Ruleset full(fragments, FullScanConfig(), /*version=*/1);
  const Ruleset early(fragments, PtiConfig{}, /*version=*/1);

  for (const attack::PluginSpec& plugin : attack::PluginCatalog()) {
    const attack::Exploit exploit = attack::OriginalExploit(plugin);
    const std::string attack_query = attack::QueryFor(plugin, exploit.payload);
    const std::string benign_query = attack::QueryFor(plugin, "7");
    ExpectParity(full, attack_query);
    ExpectParity(full, benign_query);
    ExpectParity(early, attack_query);
    ExpectParity(early, benign_query);
  }
}

TEST(PtiParity, RandomizedVocabularies) {
  Rng rng(20260806);
  const std::vector<std::string> keywords = {
      "SELECT", "FROM",  "WHERE", "ORDER BY", "LIMIT", "UNION",
      "AND",    "OR",    "=",     "IN",       "LIKE",  "--",
  };

  for (int round = 0; round < 40; ++round) {
    // A random vocabulary of SQL-looking fragments.
    php::FragmentSet fragments;
    std::vector<std::string> vocabulary;
    const std::size_t vocab_size = 3 + rng.NextBelow(12);
    for (std::size_t i = 0; i < vocab_size; ++i) {
      std::string frag;
      const std::size_t words = 1 + rng.NextBelow(4);
      for (std::size_t w = 0; w < words; ++w) {
        if (w > 0) frag += ' ';
        frag += rng.NextBool(0.7) ? rng.Pick(keywords) : rng.NextToken(4);
      }
      if (fragments.AddRaw(frag)) vocabulary.push_back(frag);
    }
    if (vocabulary.empty()) continue;

    const Ruleset full(fragments, FullScanConfig(), /*version=*/round);
    const Ruleset early(fragments, PtiConfig{}, /*version=*/round);

    // Random queries stitched from vocabulary fragments (trusted material)
    // and injected tokens the vocabulary never produced (untrusted).
    for (int q = 0; q < 10; ++q) {
      std::string query;
      const std::size_t pieces = 1 + rng.NextBelow(6);
      for (std::size_t p = 0; p < pieces; ++p) {
        if (p > 0) query += ' ';
        if (rng.NextBool(0.6)) {
          query += rng.Pick(vocabulary);
        } else if (rng.NextBool()) {
          query += rng.Pick(keywords);
        } else {
          query += rng.NextToken(3);
        }
      }
      ExpectParity(full, query);
      ExpectParity(early, query);
    }
  }
}

TEST(PtiParity, MruOrderingDoesNotChangeResults) {
  // The MRU permutation is performance state only: scanning in a rotated
  // order must produce the same verdict and span set as vocabulary order.
  php::FragmentSet fragments;
  fragments.AddRaw("SELECT * FROM records WHERE ID=");
  fragments.AddRaw(" ORDER BY id");
  fragments.AddRaw(" LIMIT 5");
  const Ruleset rs(fragments, FullScanConfig(), /*version=*/0);

  const std::string query =
      "SELECT * FROM records WHERE ID=1 UNION SELECT 2 LIMIT 5";
  const std::vector<sql::Token> tokens = sql::Lex(query);
  const std::vector<sql::CriticalUnit> units =
      sql::BuildCriticalUnits(tokens, rs.config().strict_tokens);

  const PtiResult stateless = AnalyzeNaive(rs, query, units, nullptr);
  std::vector<std::size_t> mru = {2, 0, 1};
  const PtiResult rotated = AnalyzeNaive(rs, query, units, &mru);

  EXPECT_EQ(stateless.attack_detected, rotated.attack_detected);
  EXPECT_EQ(UntrustedTexts(stateless), UntrustedTexts(rotated));
  EXPECT_EQ(Sorted(stateless.positive_spans), Sorted(rotated.positive_spans));
}

}  // namespace
}  // namespace joza::pti
