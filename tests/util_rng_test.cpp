#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "util/hash.h"

namespace joza {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 500 draws
}

TEST(Rng, NextDoubleUnit) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, TokenAlphabet) {
  Rng rng(3);
  std::string t = rng.NextToken(64);
  EXPECT_EQ(t.size(), 64u);
  for (char c : t) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

TEST(Hash, Fnv1aKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(""), kFnvOffset);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(Hash, CombineOrderSensitive) {
  auto h1 = HashCombine(HashCombine(1, 2), 3);
  auto h2 = HashCombine(HashCombine(1, 3), 2);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace joza
