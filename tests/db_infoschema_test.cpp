#include <gtest/gtest.h>

#include "attack/catalog.h"
#include "attack/extractor.h"
#include "core/joza.h"
#include "db/database.h"

namespace joza::db {
namespace {

class InfoSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.Execute("CREATE TABLE alpha (id INT, name TEXT)");
    db_.Execute("CREATE TABLE beta (x DOUBLE)");
    db_.Execute("INSERT INTO alpha VALUES (1, 'a'), (2, 'b')");
  }
  Database db_;
};

TEST_F(InfoSchemaTest, ShowTables) {
  auto r = db_.Execute("SHOW TABLES");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_string(), "alpha");
  EXPECT_EQ(r->rows[1][0].as_string(), "beta");
}

TEST_F(InfoSchemaTest, TablesVirtualTable) {
  auto r = db_.Execute(
      "SELECT table_name, table_rows FROM information_schema.tables "
      "ORDER BY table_name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_string(), "alpha");
  EXPECT_EQ(r->rows[0][1].as_int(), 2);
  EXPECT_EQ(r->rows[1][1].as_int(), 0);
}

TEST_F(InfoSchemaTest, ColumnsVirtualTable) {
  auto r = db_.Execute(
      "SELECT column_name, data_type FROM information_schema.columns "
      "WHERE table_name = 'alpha' ORDER BY column_name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_string(), "id");
  EXPECT_EQ(r->rows[0][1].as_string(), "int");
  EXPECT_EQ(r->rows[1][0].as_string(), "name");
  EXPECT_EQ(r->rows[1][1].as_string(), "text");
}

TEST_F(InfoSchemaTest, ReflectsDdlChanges) {
  db_.Execute("CREATE TABLE gamma (g INT)");
  auto r = db_.Execute("SHOW TABLES");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  db_.Execute("DROP TABLE gamma");
  r = db_.Execute("SHOW TABLES");
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(InfoSchemaTest, UnionPivotExfiltratesSchema) {
  // The SQLMap schema-discovery query shape works end to end.
  auto r = db_.Execute(
      "SELECT name FROM alpha WHERE id = -1 "
      "UNION SELECT GROUP_CONCAT(table_name) FROM information_schema.tables");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "alpha,beta");
}

TEST_F(InfoSchemaTest, VirtualTablesAreReadOnly) {
  EXPECT_FALSE(db_.Execute("INSERT INTO information_schema.tables "
                           "VALUES ('x', 1)")
                   .ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE information_schema.tables").ok());
}

TEST(ExtractorSchema, EnumeratesTestbedTables) {
  auto app = attack::MakeTestbed();
  const attack::PluginSpec* plugin = nullptr;
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    if (p.name == "Count per Day") plugin = &p;
  }
  ASSERT_NE(plugin, nullptr);
  attack::Extractor ex(*app, *plugin);
  auto tables = ex.EnumerateTables();
  ASSERT_FALSE(tables.empty());
  bool found_users = false;
  for (const std::string& t : tables) {
    if (t == "wp_users") found_users = true;
  }
  EXPECT_TRUE(found_users)
      << "schema discovery must reveal the credentials table";
}

TEST(ExtractorSchema, JozaBlocksSchemaDiscovery) {
  auto app = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());
  const attack::PluginSpec* plugin = nullptr;
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    if (p.name == "Count per Day") plugin = &p;
  }
  attack::Extractor ex(*app, *plugin);
  EXPECT_TRUE(ex.EnumerateTables().empty());
  app->SetQueryGate(nullptr);
}

}  // namespace
}  // namespace joza::db
