// The paper's input-independence claims (Section III-B):
//  * second-order attacks (payload cached in the database, used later) are
//    invisible to NTI but caught by PTI;
//  * mixed input-source / payload-construction attacks (harmless pieces
//    concatenated inside the application) likewise.
#include <gtest/gtest.h>

#include "core/joza.h"
#include "http/request.h"
#include "nti/nti.h"
#include "pti/pti.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"
#include "webapp/application.h"

namespace joza {
namespace {

using http::Request;
using webapp::Application;
using webapp::QueryRunner;

// A guestbook whose *write* path is correctly escaped but whose *read*
// path trusts the stored value into an ORDER BY position — the classic
// second-order bug.
void InstallGuestbook(Application& app) {
  app.database().Execute(
      "CREATE TABLE gb_prefs (name TEXT, value TEXT)");
  app.AddRoute(
      "/prefs",
      [](const Request& req, const QueryRunner& query) {
        // Properly escaped write: this request is benign by itself.
        std::string v = webapp::ApplyTransform(webapp::Transform::kEscapeSql,
                                               req.Param("sort"));
        auto r = query("INSERT INTO gb_prefs (name, value) VALUES ('sort', '" +
                       v + "')");
        return http::Response{200, r.ok() ? "saved" : "error", 0};
      },
      {"gb/prefs.php", R"PHP(<?php
$v = mysql_real_escape_string($_POST['sort']);
$q = "INSERT INTO gb_prefs (name, value) VALUES ('sort', '$v')";
)PHP"});
  app.AddRoute(
      "/list",
      [](const Request&, const QueryRunner& query) {
        auto pref = query(
            "SELECT value FROM gb_prefs WHERE name = 'sort' LIMIT 1");
        if (!pref.ok()) return http::Response{500, "", 0};
        std::string sort = pref->rows.empty()
                               ? std::string("id")
                               : pref->rows[0][0].as_string();
        // The stored value flows into the query unescaped: second order.
        auto rows = query("SELECT id, title FROM wp_posts ORDER BY " + sort +
                          " DESC LIMIT 5");
        if (!rows.ok()) return http::Response{500, "err", 0};
        std::string body;
        for (const auto& row : rows->rows) body += row[1].as_string() + ";";
        return http::Response{200, body, 0};
      },
      {"gb/list.php", R"PHP(<?php
$pref = "SELECT value FROM gb_prefs WHERE name = 'sort' LIMIT 1";
$q = "SELECT id, title FROM wp_posts ORDER BY $sort DESC LIMIT 5";
)PHP"});
}

class SecondOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = webapp::MakeWordpressLikeApp(3);
    InstallGuestbook(*app_);
  }
  std::unique_ptr<webapp::Application> app_;
};

// The payload arms on one request and fires on another.
constexpr const char* kStoredPayload =
    "(SELECT 1 UNION SELECT pass FROM wp_users)";

TEST_F(SecondOrderTest, AttackWorksUnprotected) {
  auto save = app_->Handle(Request::Post("/prefs", {{"sort", kStoredPayload}}));
  EXPECT_EQ(save.status, 200);
  // Firing request: the stored subquery runs; the union mismatch error (it
  // returns 2 rows in a scalar position is fine here — it returns rows) is
  // not required, just that the injected SQL executes.
  auto list = app_->Handle(Request::Get("/list", {}));
  EXPECT_NE(list.status, 404);
}

TEST_F(SecondOrderTest, NtiBlindToSecondOrder) {
  // Arm.
  app_->Handle(Request::Post("/prefs", {{"sort", kStoredPayload}}));
  // Capture the firing query.
  std::vector<std::string> queries;
  app_->SetQueryGate([&queries](std::string_view sql, const http::Request&) {
    queries.emplace_back(sql);
    return webapp::GateDecision{};
  });
  const Request firing = Request::Get("/list", {});
  app_->Handle(firing);
  app_->SetQueryGate(nullptr);

  nti::NtiAnalyzer nti;
  bool nti_detects = false;
  const std::vector<http::InputView> views = firing.InputViews();
  for (const std::string& q : queries) {
    const auto critical =
        sql::CriticalTokens(sql::Lex(q), nti.config().strict_tokens);
    if (nti.AnalyzeCritical(q, critical, views).attack_detected) {
      nti_detects = true;
    }
  }
  EXPECT_FALSE(nti_detects)
      << "the firing request carries no attack input for NTI to correlate";
}

TEST_F(SecondOrderTest, PtiCatchesSecondOrder) {
  app_->Handle(Request::Post("/prefs", {{"sort", kStoredPayload}}));
  std::vector<std::string> queries;
  app_->SetQueryGate([&queries](std::string_view sql, const http::Request&) {
    queries.emplace_back(sql);
    return webapp::GateDecision{};
  });
  app_->Handle(Request::Get("/list", {}));
  app_->SetQueryGate(nullptr);

  pti::PtiAnalyzer pti(php::FragmentSet::FromSources(app_->sources()));
  bool pti_detects = false;
  for (const std::string& q : queries) {
    if (pti.Analyze(q).attack_detected) pti_detects = true;
  }
  EXPECT_TRUE(pti_detects)
      << "the injected UNION/SELECT never came from program fragments";
}

TEST_F(SecondOrderTest, JozaBlocksSecondOrderEndToEnd) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  // The arming write is benign and must pass (its payload sits inside a
  // properly escaped string literal).
  auto save = app_->Handle(Request::Post("/prefs", {{"sort", kStoredPayload}}));
  EXPECT_EQ(save.status, 200);
  EXPECT_EQ(save.body, "saved");
  // The firing read is terminated.
  auto list = app_->Handle(Request::Get("/list", {}));
  EXPECT_EQ(list.status, 500);
  EXPECT_TRUE(list.body.empty());
  app_->SetQueryGate(nullptr);
}

TEST_F(SecondOrderTest, BenignStoredPreferenceStillWorks) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  auto save = app_->Handle(Request::Post("/prefs", {{"sort", "views"}}));
  EXPECT_EQ(save.status, 200);
  auto list = app_->Handle(Request::Get("/list", {}));
  EXPECT_EQ(list.status, 200) << "user-chosen sort column is permitted by "
                                 "the pragmatic threat model";
  EXPECT_FALSE(list.body.empty());
  app_->SetQueryGate(nullptr);
}

// --- Payload construction (Section III-A) ------------------------------------

void InstallConcatPlugin(Application& app) {
  app.AddRoute(
      "/concat",
      [](const Request& req, const QueryRunner& query) {
        // The paper's exact example: $input = $_GET[q1].$_GET[q2].$_GET[q3]
        std::string input = std::string(req.Param("q1")) +
                            std::string(req.Param("q2")) +
                            std::string(req.Param("q3"));
        auto r = query("SELECT login, pass FROM wp_users WHERE id=" + input);
        if (!r.ok()) return http::Response{500, "err", 0};
        std::string body;
        for (const auto& row : r->rows) {
          body += row[0].as_string() + ":" + row[1].as_string() + ";";
        }
        return http::Response{200, body, 0};
      },
      {"concat/plugin.php", R"PHP(<?php
$input = $_GET['q1'] . $_GET['q2'] . $_GET['q3'];
$query = "SELECT login, pass FROM wp_users WHERE id=" . $input;
)PHP"});
}

TEST(PayloadConstruction, NtiMissesPtiCatchesJozaBlocks) {
  auto app = webapp::MakeWordpressLikeApp(5);
  InstallConcatPlugin(*app);
  // q1="1 O" q2="R TR" q3="UE"  ->  "1 OR TRUE"
  const Request attack = Request::Get(
      "/concat", {{"q1", "1 O"}, {"q2", "R TR"}, {"q3", "UE"}});

  // Unprotected: the concatenated tautology dumps the users table.
  auto leak = app->Handle(attack);
  EXPECT_NE(leak.body.find("s3cr3t_hash"), std::string::npos);

  // Capture the query and test components separately.
  std::string q;
  app->SetQueryGate([&q](std::string_view sql, const http::Request&) {
    if (sql.find("wp_users WHERE id=") != std::string_view::npos) {
      q = std::string(sql);
    }
    return webapp::GateDecision{};
  });
  app->Handle(attack);
  app->SetQueryGate(nullptr);
  ASSERT_FALSE(q.empty());

  nti::NtiAnalyzer nti;
  EXPECT_FALSE(nti.AnalyzeCritical(
                      q, sql::CriticalTokens(sql::Lex(q), false),
                      attack.InputViews())
                   .attack_detected)
      << "no single input covers a whole critical token";
  pti::PtiAnalyzer pti(php::FragmentSet::FromSources(app->sources()));
  EXPECT_TRUE(pti.Analyze(q).attack_detected);

  // The hybrid blocks it end to end.
  core::Joza joza = core::Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());
  auto blocked = app->Handle(attack);
  EXPECT_EQ(blocked.status, 500);
  EXPECT_EQ(blocked.body.find("s3cr3t_hash"), std::string::npos);
  app->SetQueryGate(nullptr);

  // Benign multi-part usage passes.
  app->SetQueryGate(joza.MakeGate());
  auto ok = app->Handle(Request::Get("/concat", {{"q1", "1"}}));
  EXPECT_EQ(ok.status, 200);
}

}  // namespace
}  // namespace joza
