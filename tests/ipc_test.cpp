#include <gtest/gtest.h>

#include <thread>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "core/joza.h"
#include "ipc/daemon.h"
#include "ipc/framing.h"

namespace joza::ipc {
namespace {

php::FragmentSet PaperFragments() {
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM records WHERE ID=");
  set.AddRaw(" LIMIT 5");
  return set;
}

// --- Framing -----------------------------------------------------------------

TEST(Framing, FrameRoundTrip) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  Frame out{MessageType::kAnalyzeRequest, "SELECT 1"};
  ASSERT_TRUE(WriteFrame(pipe->second.get(), out).ok());
  auto in = ReadFrame(pipe->first.get());
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  EXPECT_EQ(in->type, MessageType::kAnalyzeRequest);
  EXPECT_EQ(in->payload, "SELECT 1");
}

TEST(Framing, EmptyPayload) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(WriteFrame(pipe->second.get(), {MessageType::kPing, ""}).ok());
  auto in = ReadFrame(pipe->first.get());
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->type, MessageType::kPing);
  EXPECT_TRUE(in->payload.empty());
}

TEST(Framing, CleanEofIsNotFound) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  pipe->second.Close();
  auto in = ReadFrame(pipe->first.get());
  ASSERT_FALSE(in.ok());
  EXPECT_EQ(in.status().code(), StatusCode::kNotFound);
}

TEST(Framing, OversizedFrameRejected) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(
      WriteFrame(pipe->second.get(), {MessageType::kPing, "0123456789"}).ok());
  auto in = ReadFrame(pipe->first.get(), /*max_payload=*/4);
  ASSERT_FALSE(in.ok());
  EXPECT_EQ(in.status().code(), StatusCode::kInvalidArgument);
}

TEST(Framing, MultipleFramesInOrder) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(WriteFrame(pipe->second.get(),
                           {MessageType::kAck, std::to_string(i)})
                    .ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto in = ReadFrame(pipe->first.get());
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in->payload, std::to_string(i));
  }
}

TEST(Framing, VerdictWireRoundTrip) {
  PtiVerdictWire v;
  v.attack_detected = true;
  v.untrusted_critical_tokens = 3;
  v.hits = 17;
  v.fragments_scanned = 99;
  v.ruleset_version = (std::uint64_t{7} << 32) | 42u;  // exercises both words
  v.untrusted_texts = {"UNION", "SELECT", "-- x"};
  auto decoded = DecodeVerdict(EncodeVerdict(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->attack_detected);
  EXPECT_EQ(decoded->untrusted_critical_tokens, 3u);
  EXPECT_EQ(decoded->hits, 17u);
  EXPECT_EQ(decoded->fragments_scanned, 99u);
  EXPECT_EQ(decoded->ruleset_version, v.ruleset_version);
  EXPECT_EQ(decoded->untrusted_texts, v.untrusted_texts);
}

TEST(Framing, VerdictDecodeRejectsTruncated) {
  PtiVerdictWire v;
  v.untrusted_texts = {"abc"};
  std::string enc = EncodeVerdict(v);
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(DecodeVerdict(enc.substr(0, cut)).ok()) << cut;
  }
}

TEST(Framing, StringListRoundTrip) {
  std::vector<std::string> list = {"OR", " LIMIT 5", "", "a'b\"c"};
  auto decoded = DecodeStringList(EncodeStringList(list));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), list);
}

TEST(Framing, FragmentUpdateRoundTrip) {
  FragmentUpdate update;
  update.version = (std::uint64_t{1} << 40) + 3;
  update.fragments = {" ORDER BY id", "", "a'b"};
  auto decoded = DecodeFragmentUpdate(EncodeFragmentUpdate(update));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, update.version);
  EXPECT_EQ(decoded->fragments, update.fragments);
}

TEST(Framing, FragmentUpdateRejectsTruncated) {
  FragmentUpdate update;
  update.version = 9;
  update.fragments = {"abc"};
  std::string enc = EncodeFragmentUpdate(update);
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(DecodeFragmentUpdate(enc.substr(0, cut)).ok()) << cut;
  }
}

TEST(Framing, U64RoundTripAndTrailingBytesRejected) {
  const std::uint64_t v = (std::uint64_t{0xdead} << 32) | 0xbeef;
  auto decoded = DecodeU64(EncodeU64(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), v);
  EXPECT_FALSE(DecodeU64(EncodeU64(v) + "x").ok());
  EXPECT_FALSE(DecodeU64("short").ok());
}

// --- In-process daemon loop (threads, no fork) --------------------------------

TEST(DaemonServe, AnalyzeOverPipes) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, PaperFragments());
  });

  // Benign query.
  ASSERT_TRUE(WriteFrame(req->second.get(),
                         {MessageType::kAnalyzeRequest,
                          "SELECT * FROM records WHERE ID=5 LIMIT 5"})
                  .ok());
  auto r1 = ReadFrame(resp->first.get());
  ASSERT_TRUE(r1.ok());
  auto v1 = DecodeVerdict(r1->payload);
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(v1->attack_detected);

  // Injected query.
  ASSERT_TRUE(
      WriteFrame(req->second.get(),
                 {MessageType::kAnalyzeRequest,
                  "SELECT * FROM records WHERE ID=1 UNION SELECT 2 LIMIT 5"})
          .ok());
  auto r2 = ReadFrame(resp->first.get());
  ASSERT_TRUE(r2.ok());
  auto v2 = DecodeVerdict(r2->payload);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->attack_detected);
  EXPECT_GT(v2->untrusted_critical_tokens, 0u);

  // Shutdown handshake.
  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kShutdown, ""}).ok());
  auto ack = ReadFrame(resp->first.get());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, MessageType::kAck);
  server.join();
}

TEST(DaemonServe, AddFragmentsTakesEffect) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, PaperFragments());
  });
  const std::string query =
      "SELECT * FROM records WHERE ID=5 ORDER BY id LIMIT 5";
  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kAnalyzeRequest, query})
          .ok());
  auto before = DecodeVerdict(ReadFrame(resp->first.get())->payload);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->attack_detected);  // ORDER BY untrusted

  FragmentUpdate update;
  update.version = 1;
  update.fragments = {" ORDER BY id LIMIT 5"};
  ASSERT_TRUE(WriteFrame(req->second.get(),
                         {MessageType::kAddFragments,
                          EncodeFragmentUpdate(update)})
                  .ok());
  auto ack = ReadFrame(resp->first.get());
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, MessageType::kAck);
  auto acked_version = DecodeU64(ack->payload);
  ASSERT_TRUE(acked_version.ok());
  EXPECT_EQ(acked_version.value(), 1u);  // daemon landed on the named version

  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kAnalyzeRequest, query})
          .ok());
  auto after = DecodeVerdict(ReadFrame(resp->first.get())->payload);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->attack_detected);

  req->second.Close();  // EOF terminates the daemon loop
  server.join();
}

TEST(DaemonServe, PongEchoesSeededVersion) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, PaperFragments(), {}, /*initial_version=*/7);
  });
  ASSERT_TRUE(WriteFrame(req->second.get(), {MessageType::kPing, ""}).ok());
  auto pong = ReadFrame(resp->first.get());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, MessageType::kPong);
  auto version = DecodeU64(pong->payload);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 7u);

  // Analyze verdicts are stamped with the same version.
  ASSERT_TRUE(WriteFrame(req->second.get(),
                         {MessageType::kAnalyzeRequest,
                          "SELECT * FROM records WHERE ID=5 LIMIT 5"})
                  .ok());
  auto verdict = DecodeVerdict(ReadFrame(resp->first.get())->payload);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->ruleset_version, 7u);

  req->second.Close();
  server.join();
}

// --- Forked daemon client ------------------------------------------------------

TEST(DaemonClient, PersistentLifecycle) {
  DaemonClient client(DaemonClient::Mode::kPersistent, PaperFragments());
  ASSERT_TRUE(client.Ping().ok());
  auto safe = client.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5");
  ASSERT_TRUE(safe.ok()) << safe.status().ToString();
  EXPECT_FALSE(safe->attack_detected);
  auto bad = client.Analyze(
      "SELECT * FROM records WHERE ID=1 OR 1=1 LIMIT 5");
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->attack_detected);
  client.Shutdown();
}

TEST(DaemonClient, SpawnPerRequest) {
  DaemonClient client(DaemonClient::Mode::kSpawnPerRequest, PaperFragments());
  for (int i = 0; i < 3; ++i) {
    auto v = client.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5");
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_FALSE(v->attack_detected);
  }
}

TEST(DaemonClient, AddFragmentsPersistent) {
  DaemonClient client(DaemonClient::Mode::kPersistent, PaperFragments());
  auto v = client.Analyze("SELECT * FROM records WHERE ID=5 ORDER BY id");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->attack_detected);
  ASSERT_TRUE(client.AddFragments({" ORDER BY id"}).ok());
  v = client.Analyze("SELECT * FROM records WHERE ID=5 ORDER BY id");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->attack_detected);
}

TEST(DaemonClient, VersionAdvancesThroughHandshakeAndUpdates) {
  DaemonClient client(DaemonClient::Mode::kPersistent, PaperFragments(),
                      pti::PtiConfig{}, /*initial_version=*/3);
  EXPECT_EQ(client.ruleset_version(), 3u);
  auto reported = client.Handshake();
  ASSERT_TRUE(reported.ok()) << reported.status().ToString();
  EXPECT_EQ(reported.value(), 3u);  // forked daemon echoes the seed version

  // One fragment text advances the update log by one.
  ASSERT_TRUE(client.AddFragments({" ORDER BY id"}).ok());
  EXPECT_EQ(client.ruleset_version(), 4u);
  reported = client.Handshake();
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(reported.value(), 4u);

  // Verdicts now carry the converged version.
  auto v = client.Analyze("SELECT * FROM records WHERE ID=5 ORDER BY id");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ruleset_version, 4u);
  client.Shutdown();
}

TEST(DaemonClient, AddFragmentsAtNamesExactTarget) {
  DaemonClient client(DaemonClient::Mode::kPersistent, PaperFragments());
  auto acked =
      client.AddFragmentsAt({" ORDER BY id", " LIMIT 9"}, /*target_version=*/2);
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  EXPECT_EQ(acked.value(), 2u);
  EXPECT_EQ(client.ruleset_version(), 2u);
  client.Shutdown();
}

TEST(DaemonClient, JozaBackendIntegration) {
  // Full stack: Joza running its PTI analysis through the forked daemon,
  // protecting the testbed end-to-end.
  auto app = attack::MakeTestbed();
  core::JozaConfig cfg;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  core::Joza joza = core::Joza::Install(*app, cfg);
  DaemonClient client(DaemonClient::Mode::kPersistent,
                      php::FragmentSet::FromSources(app->sources()));
  joza.SetPtiBackend(client.AsPtiBackend());
  app->SetQueryGate(joza.MakeGate());

  const attack::PluginSpec& plugin = *attack::TestbedPlugins()[5];
  attack::Exploit e = attack::OriginalExploit(plugin);
  EXPECT_FALSE(attack::ExploitSucceeds(*app, plugin, e));

  auto ok = app->Handle(http::Request::Get(plugin.route, {{plugin.param, "1"}}));
  EXPECT_NE(ok.status, 500);
  app->SetQueryGate(nullptr);
}

}  // namespace
}  // namespace joza::ipc
