#include "util/span.h"

#include <gtest/gtest.h>

namespace joza {
namespace {

TEST(ByteSpan, Basics) {
  ByteSpan s{2, 5};
  EXPECT_EQ(s.length(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE((ByteSpan{3, 3}).empty());
  EXPECT_TRUE((ByteSpan{3, 2}).empty());
}

TEST(ByteSpan, Contains) {
  ByteSpan outer{2, 10};
  EXPECT_TRUE(outer.contains(ByteSpan{2, 10}));
  EXPECT_TRUE(outer.contains(ByteSpan{3, 9}));
  EXPECT_FALSE(outer.contains(ByteSpan{1, 5}));
  EXPECT_FALSE(outer.contains(ByteSpan{5, 11}));
  EXPECT_TRUE(outer.contains(std::size_t{2}));
  EXPECT_TRUE(outer.contains(std::size_t{9}));
  EXPECT_FALSE(outer.contains(std::size_t{10}));
}

TEST(ByteSpan, Overlaps) {
  ByteSpan a{2, 5};
  EXPECT_TRUE(a.overlaps(ByteSpan{4, 8}));
  EXPECT_TRUE(a.overlaps(ByteSpan{0, 3}));
  EXPECT_FALSE(a.overlaps(ByteSpan{5, 8}));  // adjacent, half-open
  EXPECT_FALSE(a.overlaps(ByteSpan{0, 2}));
}

TEST(MergeSpans, MergesOverlappingAndAdjacent) {
  auto merged = MergeSpans({{5, 8}, {1, 3}, {2, 6}, {10, 12}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (ByteSpan{1, 8}));
  EXPECT_EQ(merged[1], (ByteSpan{10, 12}));
}

TEST(MergeSpans, AdjacentSpansJoin) {
  auto merged = MergeSpans({{0, 3}, {3, 6}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (ByteSpan{0, 6}));
}

TEST(MergeSpans, Empty) { EXPECT_TRUE(MergeSpans({}).empty()); }

TEST(CoveredBySingle, RequiresOneCoveringSpan) {
  std::vector<ByteSpan> spans = {{0, 4}, {6, 10}};
  EXPECT_TRUE(CoveredBySingle(spans, {1, 3}));
  EXPECT_TRUE(CoveredBySingle(spans, {6, 10}));
  // Straddles the gap: covered by the union but by no single span.
  EXPECT_FALSE(CoveredBySingle(spans, {3, 7}));
  EXPECT_FALSE(CoveredBySingle(spans, {4, 6}));
}

}  // namespace
}  // namespace joza
