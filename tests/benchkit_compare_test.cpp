#include "benchkit/compare.h"

#include <algorithm>
#include <string>

#include "benchkit/result.h"
#include "gtest/gtest.h"

namespace joza::benchkit {
namespace {

SuiteResult MakeFresh(double qps, double p99, double counter) {
  SuiteResult r("smoke", SuiteOptions{});
  r.AddCompared("engine.qps", qps, "qps", Direction::kHigherBetter, 0.10);
  r.AddCompared("engine.p99_ms", p99, "ms", Direction::kLowerBetter, 0.10,
                /*abs_slack=*/0.5);
  r.AddExact("engine.queries", counter);
  r.AddInfo("engine.wall_s", 12.0, "s");
  return r;
}

Json BaselineFor(const SuiteResult& r) { return r.ToJson(); }

const MetricDiff* FindDiff(const Comparison& cmp, const std::string& name) {
  for (const MetricDiff& d : cmp.diffs) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

TEST(Compare, IdenticalRunPasses) {
  const SuiteResult base = MakeFresh(1000, 5.0, 42);
  const Comparison cmp = CompareToBaseline(BaselineFor(base), base);
  EXPECT_EQ(cmp.status, ComparisonStatus::kOk);
  EXPECT_EQ(cmp.regressions(), 0u);
}

TEST(Compare, WithinBandPasses) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  // 5% QPS drop sits inside the 10% band; p99 within band + slack.
  const Comparison cmp =
      CompareToBaseline(baseline, MakeFresh(950, 5.9, 42));
  EXPECT_EQ(cmp.status, ComparisonStatus::kOk);
}

TEST(Compare, HigherBetterDropOutsideBandRegresses) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  const Comparison cmp =
      CompareToBaseline(baseline, MakeFresh(850, 5.0, 42));
  EXPECT_EQ(cmp.status, ComparisonStatus::kRegressed);
  const MetricDiff* d = FindDiff(cmp, "engine.qps");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DiffKind::kRegressed);
  // The failure message names the metric and the violated band.
  EXPECT_NE(d->message.find("engine.qps"), std::string::npos);
  EXPECT_NE(d->message.find("850"), std::string::npos);
}

TEST(Compare, LowerBetterUsesSlackThenRegresses) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  // Band: 5.0 * 1.10 + 0.5 = 6.0. 6.0 passes, 6.1 regresses.
  EXPECT_EQ(CompareToBaseline(baseline, MakeFresh(1000, 6.0, 42)).status,
            ComparisonStatus::kOk);
  EXPECT_EQ(CompareToBaseline(baseline, MakeFresh(1000, 6.1, 42)).status,
            ComparisonStatus::kRegressed);
}

TEST(Compare, ExactMetricRegressesOnAnyChange) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  const Comparison cmp =
      CompareToBaseline(baseline, MakeFresh(1000, 5.0, 43));
  EXPECT_EQ(cmp.status, ComparisonStatus::kRegressed);
  const MetricDiff* d = FindDiff(cmp, "engine.queries");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DiffKind::kRegressed);
}

TEST(Compare, ImprovementIsNotedNotFailed) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  const Comparison cmp =
      CompareToBaseline(baseline, MakeFresh(1500, 5.0, 42));
  EXPECT_EQ(cmp.status, ComparisonStatus::kOk);
  const MetricDiff* d = FindDiff(cmp, "engine.qps");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DiffKind::kImproved);
}

TEST(Compare, InfoMetricsAreNeverCompared) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  // Same run but wall time differs wildly — must not matter.
  SuiteResult fresh("smoke", SuiteOptions{});
  fresh.AddCompared("engine.qps", 1000, "qps", Direction::kHigherBetter,
                    0.10);
  fresh.AddCompared("engine.p99_ms", 5.0, "ms", Direction::kLowerBetter,
                    0.10, 0.5);
  fresh.AddExact("engine.queries", 42);
  fresh.AddInfo("engine.wall_s", 9000.0, "s");
  const Comparison cmp = CompareToBaseline(baseline, fresh);
  EXPECT_EQ(cmp.status, ComparisonStatus::kOk);
  const MetricDiff* d = FindDiff(cmp, "engine.wall_s");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DiffKind::kNotCompared);
}

TEST(Compare, MetricMissingFromFreshRunRegresses) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  SuiteResult fresh("smoke", SuiteOptions{});
  fresh.AddCompared("engine.qps", 1000, "qps", Direction::kHigherBetter,
                    0.10);
  // engine.p99_ms and engine.queries vanished — coverage loss.
  const Comparison cmp = CompareToBaseline(baseline, fresh);
  EXPECT_EQ(cmp.status, ComparisonStatus::kRegressed);
  EXPECT_EQ(cmp.regressions(), 2u);
  const MetricDiff* d = FindDiff(cmp, "engine.queries");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DiffKind::kMissingFresh);
}

TEST(Compare, NewMetricInFreshRunIsNotedAndPasses) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  SuiteResult fresh = MakeFresh(1000, 5.0, 42);
  fresh.AddExact("engine.new_counter", 7);
  const Comparison cmp = CompareToBaseline(baseline, fresh);
  EXPECT_EQ(cmp.status, ComparisonStatus::kOk);
  const MetricDiff* d = FindDiff(cmp, "engine.new_counter");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, DiffKind::kNewMetric);
}

TEST(Compare, SchemaVersionMismatchRefusesToCompare) {
  Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  baseline.Set("schema_version", Json(kSchemaVersion + 1));
  const Comparison cmp =
      CompareToBaseline(baseline, MakeFresh(1000, 5.0, 42));
  EXPECT_EQ(cmp.status, ComparisonStatus::kBadBaseline);
  EXPECT_NE(cmp.error.find("schema_version"), std::string::npos);
}

TEST(Compare, SuiteMismatchRefusesToCompare) {
  const Json baseline = BaselineFor(MakeFresh(1000, 5.0, 42));
  SuiteResult other("churn", SuiteOptions{});
  const Comparison cmp = CompareToBaseline(baseline, other);
  EXPECT_EQ(cmp.status, ComparisonStatus::kBadBaseline);
  EXPECT_NE(cmp.error.find("suite"), std::string::npos);
}

TEST(Compare, MissingBaselineFileIsDistinctFromBadBaseline) {
  const Comparison cmp = CompareToBaselineFile(
      ::testing::TempDir() + "/definitely_missing_baseline.json",
      MakeFresh(1000, 5.0, 42));
  EXPECT_EQ(cmp.status, ComparisonStatus::kNoBaseline);
  EXPECT_FALSE(cmp.error.empty());
}

TEST(Compare, RoundTripThroughDumpAndParse) {
  // The committed-file path: serialize, reparse, then compare.
  const SuiteResult base = MakeFresh(1000, 5.0, 42);
  StatusOr<Json> parsed = Json::Parse(base.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Comparison cmp = CompareToBaseline(parsed.value(), base);
  EXPECT_EQ(cmp.status, ComparisonStatus::kOk);
}

TEST(Gates, FailureNamesMetricAndThreshold) {
  SuiteResult r("smoke", SuiteOptions{});
  r.AddExact("parity.diffs", 3);
  r.RequireEq("verdict parity", "parity.diffs", 0);
  r.RequireGe("missing metric fails closed", "no.such.metric", 1);
  EXPECT_FALSE(r.AllGatesPassed());
  ASSERT_EQ(r.gates().size(), 2u);
  EXPECT_FALSE(r.gates()[0].passed);
  EXPECT_EQ(r.gates()[0].metric, "parity.diffs");
  EXPECT_EQ(r.gates()[0].threshold, 0.0);
  EXPECT_EQ(r.gates()[0].value, 3.0);
  EXPECT_FALSE(r.gates()[1].passed);
}

TEST(Gates, PassingGatesReportTrue) {
  SuiteResult r("smoke", SuiteOptions{});
  r.AddExact("parity.diffs", 0);
  r.AddCompared("speedup", 3.5, "x", Direction::kHigherBetter, 0.25);
  r.RequireEq("verdict parity", "parity.diffs", 0);
  r.RequireGe("staged speedup", "speedup", 2.0);
  r.RequireLe("parity bounded", "parity.diffs", 5);
  EXPECT_TRUE(r.AllGatesPassed());
  EXPECT_TRUE(r.ReportGates());
}

}  // namespace
}  // namespace joza::benchkit
