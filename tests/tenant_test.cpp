// Multi-tenant fleet suite: tenant id hygiene, gateway routing edges on
// both io models, tiered hot/cold residency (verdict identity across
// demote/promote, the budget ledger, fail-closed on a corrupt cold store),
// and the snapshot migration shim. The demotion-vs-pinned-Check race test
// runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "core/joza.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "http/request.h"
#include "phpsrc/fragments.h"
#include "resilience/snapshot.h"
#include "tenant/fleet.h"

namespace joza {
namespace {

// Scratch directory per test; removed best-effort in the destructor.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/joza_tenant_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) path = buf.data();
  }
  ~ScratchDir() {
    if (path.empty()) return;
    // Only files this suite creates live here: cold images, snapshots.
    std::vector<std::string> names;
    for (const char* stem :
         {"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "default"}) {
      names.push_back(std::string(stem) + ".ruleset");
      names.push_back(std::string(stem) + ".ruleset.tmp");
      names.push_back(std::string("snap.") + stem);
      names.push_back(std::string("snap.") + stem + ".tmp");
    }
    names.push_back("snap");
    names.push_back("snap.tmp");
    for (const std::string& n : names) ::unlink((path + "/" + n).c_str());
    ::rmdir(path.c_str());
  }
};

php::FragmentSet TestbedSeed() {
  auto app = attack::MakeTestbed();
  return php::FragmentSet::FromSources(app->sources());
}

php::FragmentSet TinySeed(const std::string& marker) {
  php::FragmentSet seed;
  seed.AddRaw("SELECT " + marker + " FROM posts WHERE id = %d",
              marker + ".php");
  return seed;
}

tenant::FleetOptions ColdCapableOptions(const ScratchDir& dir,
                                        std::uint64_t budget = 0) {
  tenant::FleetOptions opts;
  opts.engine.cache_capacity = 1024;
  opts.memory_budget_bytes = budget;
  opts.cold_dir = dir.path;
  return opts;
}

http::Request WithTenant(http::Request request, const std::string& id) {
  request.headers.emplace_back(http::InputKind::kHeader, "X-Joza-Tenant", id);
  return request;
}

http::Request ExploitRequest() {
  const auto* plugin = attack::TestbedPlugins().front();
  attack::Exploit e = attack::OriginalExploit(*plugin);
  return http::Request::Get(plugin->route, {{plugin->param, e.payload}});
}

// ---------------------------------------------------------------------------
// Tenant id grammar
// ---------------------------------------------------------------------------

TEST(TenantId, AcceptsSafeNames) {
  EXPECT_TRUE(tenant::ValidTenantId("default"));
  EXPECT_TRUE(tenant::ValidTenantId("t00"));
  EXPECT_TRUE(tenant::ValidTenantId("Acme-Corp_42"));
  EXPECT_TRUE(tenant::ValidTenantId("a"));
  EXPECT_TRUE(tenant::ValidTenantId(std::string(64, 'x')));
}

TEST(TenantId, RejectsTraversalAndOversize) {
  EXPECT_FALSE(tenant::ValidTenantId(""));
  EXPECT_FALSE(tenant::ValidTenantId(std::string(65, 'x')));
  // Ids become cold-store / snapshot file name components: no dots or
  // separators, so none of these can escape the configured directory.
  EXPECT_FALSE(tenant::ValidTenantId(".."));
  EXPECT_FALSE(tenant::ValidTenantId("../evil"));
  EXPECT_FALSE(tenant::ValidTenantId("..%2fevil"));
  EXPECT_FALSE(tenant::ValidTenantId("a/b"));
  EXPECT_FALSE(tenant::ValidTenantId("a\\b"));
  EXPECT_FALSE(tenant::ValidTenantId("a.b"));
  EXPECT_FALSE(tenant::ValidTenantId("a b"));
  EXPECT_FALSE(tenant::ValidTenantId("a\nb"));
  EXPECT_FALSE(tenant::ValidTenantId("caf\xc3\xa9"));
}

// ---------------------------------------------------------------------------
// Fleet registry basics
// ---------------------------------------------------------------------------

TEST(Fleet, AddTenantValidates) {
  tenant::Fleet fleet({});
  EXPECT_TRUE(fleet.AddTenant("alpha", TinySeed("alpha")).ok());
  EXPECT_FALSE(fleet.AddTenant("alpha", TinySeed("alpha")).ok())
      << "duplicate ids must be rejected";
  EXPECT_FALSE(fleet.AddTenant("../evil", TinySeed("evil")).ok());
  EXPECT_FALSE(fleet.AddTenant("", TinySeed("x")).ok());
  EXPECT_TRUE(fleet.Has("alpha"));
  EXPECT_FALSE(fleet.Has("beta"));
}

TEST(Fleet, BudgetRequiresColdDir) {
  tenant::FleetOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  tenant::Fleet fleet(opts);
  EXPECT_FALSE(fleet.AddTenant("alpha", TinySeed("alpha")).ok())
      << "a budget with nowhere to demote to must be refused";
}

TEST(Fleet, AcquireUnknownTenantIsNotFound) {
  tenant::Fleet fleet({});
  ASSERT_TRUE(fleet.AddTenant("alpha", TinySeed("alpha")).ok());
  auto pin = fleet.Acquire("ghost");
  EXPECT_FALSE(pin.ok());
}

// ---------------------------------------------------------------------------
// Demote / promote: verdict identity and version continuity
// ---------------------------------------------------------------------------

TEST(Fleet, DemotePromoteKeepsVerdictsAndVersion) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  tenant::Fleet fleet(ColdCapableOptions(dir));
  ASSERT_TRUE(fleet.AddTenant("alpha", TestbedSeed()).ok());

  auto app = attack::MakeTestbed();
  const http::Request benign = http::Request::Get("/post", {{"id", "1"}});
  const http::Request exploit = ExploitRequest();

  auto serve = [&](const http::Request& r) {
    auto pin = fleet.Acquire("alpha");
    EXPECT_TRUE(pin.ok()) << pin.status().ToString();
    app->SetQueryGate(pin.value()->MakeGate());
    const int status = app->Handle(r).status;
    app->SetQueryGate(nullptr);
    return status;
  };

  // Hot verdicts, then a ruleset update so version continuity is visible.
  EXPECT_EQ(serve(benign), 200);
  EXPECT_EQ(serve(exploit), 500);
  ASSERT_TRUE(fleet
                  .OnSourcesChanged("alpha", {{"update.php",
                                               "$q = 'SELECT 1';"}})
                  .ok());
  const std::uint64_t version_before =
      fleet.Acquire("alpha").value()->ruleset_version();
  EXPECT_EQ(version_before, 1u);

  ASSERT_TRUE(fleet.Demote("alpha").ok());
  EXPECT_EQ(fleet.stats().demotions, 1u);
  EXPECT_EQ(fleet.stats().resident, 0u);

  // Promotion rebuilds from the mmap'd cold image: same verdicts, same
  // version — only cache warmth was lost.
  EXPECT_EQ(serve(benign), 200);
  EXPECT_EQ(serve(exploit), 500);
  EXPECT_EQ(fleet.Acquire("alpha").value()->ruleset_version(),
            version_before);
  EXPECT_GE(fleet.stats().cold_loads, 2u);  // first touch + re-promotion
}

TEST(Fleet, OnSourcesChangedOnColdTenantFailsCleanly) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  tenant::Fleet fleet(ColdCapableOptions(dir));
  ASSERT_TRUE(fleet.AddTenant("alpha", TinySeed("alpha")).ok());
  ASSERT_TRUE(fleet.Acquire("alpha").ok());
  ASSERT_TRUE(fleet.Demote("alpha").ok());
  EXPECT_FALSE(
      fleet.OnSourcesChanged("alpha", {{"u.php", "$q = 'SELECT 1';"}}).ok())
      << "cold tenants take updates on promotion, not in place";
}

// ---------------------------------------------------------------------------
// Budget ledger
// ---------------------------------------------------------------------------

TEST(Fleet, LedgerNeverExceedsBudget) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  const std::vector<std::string> ids = {"alpha", "beta",  "gamma",
                                        "delta", "epsilon", "zeta"};
  std::uint64_t per_tenant = 0;
  tenant::FleetOptions probe;
  probe.engine.cache_capacity = 1024;
  for (const std::string& id : ids) {
    per_tenant = std::max(
        per_tenant, tenant::Fleet::EstimateHotBytes(TinySeed(id),
                                                    probe.engine));
  }
  const std::uint64_t budget = per_tenant * 2 + per_tenant / 2;  // ~2 hot
  tenant::Fleet fleet(ColdCapableOptions(dir, budget));
  for (const std::string& id : ids) {
    ASSERT_TRUE(fleet.AddTenant(id, TinySeed(id)).ok());
  }

  std::mt19937_64 rng(2015);
  for (int i = 0; i < 200; ++i) {
    const std::string& id = ids[rng() % ids.size()];
    auto pin = fleet.Acquire(id);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    const tenant::FleetStats s = fleet.stats();
    EXPECT_LE(s.resident_bytes, budget);
    EXPECT_LE(s.peak_resident_bytes, budget);
  }
  const tenant::FleetStats s = fleet.stats();
  EXPECT_EQ(s.acquire_failures, 0u);
  EXPECT_GT(s.demotions, 0u) << "six tenants over a two-tenant budget must "
                                "have churned";
  EXPECT_LE(s.resident, 2u);
}

// ---------------------------------------------------------------------------
// Fail-closed: corrupt cold store
// ---------------------------------------------------------------------------

TEST(Fleet, CorruptColdImageFailsClosed) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  tenant::Fleet fleet(ColdCapableOptions(dir));
  ASSERT_TRUE(fleet.AddTenant("alpha", TinySeed("alpha")).ok());
  ASSERT_TRUE(fleet.Acquire("alpha").ok());
  ASSERT_TRUE(fleet.Demote("alpha").ok());

  {
    std::ofstream f(dir.path + "/alpha.ruleset",
                    std::ios::binary | std::ios::trunc);
    f << "GARBAGE-NOT-A-SNAPSHOT";
  }
  auto pin = fleet.Acquire("alpha");
  EXPECT_FALSE(pin.ok()) << "a corrupt cold image must never yield an "
                            "engine with a partial vocabulary";
  EXPECT_GE(fleet.stats().acquire_failures, 1u);
}

TEST(Fleet, CorruptColdImageAnswers503OverTheWire) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  tenant::Fleet fleet(ColdCapableOptions(dir));
  ASSERT_TRUE(fleet.AddTenant("alpha", TestbedSeed()).ok());
  ASSERT_TRUE(fleet.AddTenant(tenant::kDefaultTenant, TestbedSeed()).ok());
  ASSERT_TRUE(fleet.Acquire("alpha").ok());
  ASSERT_TRUE(fleet.Demote("alpha").ok());
  {
    std::ofstream f(dir.path + "/alpha.ruleset",
                    std::ios::binary | std::ios::trunc);
    f << "JZ??corrupt";
  }

  gateway::GatewayConfig gcfg;
  gcfg.workers = 2;
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &fleet,
                                gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  gateway::KeepAliveClient client(port.value());

  auto broken = client.Send(
      WithTenant(http::Request::Get("/post", {{"id", "1"}}), "alpha"));
  ASSERT_TRUE(broken.ok()) << broken.status().ToString();
  EXPECT_EQ(broken->status, 503)
      << "an unpromotable tenant is refused, never served unprotected";

  // Other tenants are unaffected.
  auto healthy = client.Get("/post?id=1");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, 200);

  EXPECT_GE(server.stats().tenant_unavailable, 1u);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Gateway routing edges, pinned to each io model
// ---------------------------------------------------------------------------

void CheckRoutingEdges(gateway::GatewayConfig::IoModel model,
                       gateway::GatewayConfig::UnknownTenant policy) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  tenant::Fleet fleet(ColdCapableOptions(dir));
  ASSERT_TRUE(fleet.AddTenant(tenant::kDefaultTenant, TestbedSeed()).ok());
  ASSERT_TRUE(fleet.AddTenant("alpha", TestbedSeed()).ok());

  gateway::GatewayConfig gcfg;
  gcfg.workers = 2;
  gcfg.io_model = model;
  gcfg.unknown_tenant = policy;
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &fleet,
                                gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  gateway::KeepAliveClient client(port.value());
  const bool strict =
      policy == gateway::GatewayConfig::UnknownTenant::kNotFound;

  const http::Request benign = http::Request::Get("/post", {{"id", "1"}});

  // No tenant id at all: the default tenant serves it under either policy.
  {
    auto r = client.Send(benign);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 200);
  }
  // Header routing to a known tenant.
  {
    auto r = client.Send(WithTenant(benign, "alpha"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 200);
  }
  // URL-prefix routing: the prefix is stripped before the app sees the
  // path, so the testbed's /post route still matches.
  {
    auto r = client.Get("/t/alpha/post?id=1");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 200);
  }
  // Unknown tenant: policy decides between default-tenant fallback and 404.
  {
    auto r = client.Send(WithTenant(benign, "ghost"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, strict ? 404 : 200);
  }
  // Invalid ids (traversal, oversized) are never looked up — same policy
  // split as unknown, and no cold-store path is ever formed from them.
  {
    auto r = client.Send(WithTenant(benign, "../evil"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, strict ? 404 : 200);
  }
  {
    auto r = client.Send(WithTenant(benign, std::string(65, 'x')));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, strict ? 404 : 200);
  }
  {
    // An invalid /t/ prefix is never stripped: strict policy answers a
    // routing 404; lenient policy falls back to the default tenant, whose
    // app has no /t/... route — a 404 either way, and no traversal.
    auto r = client.Get("/t/../default/post?id=1");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 404);
  }
  // Attacks are blocked on a routed tenant (the pinned engine's gate is
  // actually installed on this path).
  {
    auto r = client.Send(WithTenant(ExploitRequest(), "alpha"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 500);
  }

  const gateway::GatewayStats stats = server.stats();
  if (strict) {
    // Routed: bare default, header alpha, /t/alpha, exploit on alpha.
    EXPECT_EQ(stats.tenant_routed, 4u);
    // 404'd: ghost, ../evil, oversized header, invalid /t/ prefix.
    EXPECT_EQ(stats.tenant_404s, 4u);
  } else {
    EXPECT_EQ(stats.tenant_routed, 8u);
    EXPECT_EQ(stats.tenant_404s, 0u);
  }
  EXPECT_EQ(stats.tenant_unavailable, 0u);
  server.Stop();
  ASSERT_EQ(::access((dir.path + "/evil.ruleset").c_str(), F_OK), -1);
}

TEST(TenantRouting, ThreadModelDefaultPolicy) {
  CheckRoutingEdges(gateway::GatewayConfig::IoModel::kThreads,
                    gateway::GatewayConfig::UnknownTenant::kDefaultTenant);
}

TEST(TenantRouting, ThreadModelNotFoundPolicy) {
  CheckRoutingEdges(gateway::GatewayConfig::IoModel::kThreads,
                    gateway::GatewayConfig::UnknownTenant::kNotFound);
}

TEST(TenantRouting, EpollModelDefaultPolicy) {
  CheckRoutingEdges(gateway::GatewayConfig::IoModel::kEpoll,
                    gateway::GatewayConfig::UnknownTenant::kDefaultTenant);
}

TEST(TenantRouting, EpollModelNotFoundPolicy) {
  CheckRoutingEdges(gateway::GatewayConfig::IoModel::kEpoll,
                    gateway::GatewayConfig::UnknownTenant::kNotFound);
}

TEST(TenantRouting, MissingDefaultTenantIs404) {
  // A fleet configured without a default tenant refuses un-tenanted
  // traffic instead of inventing a tenant.
  tenant::Fleet fleet({});
  ASSERT_TRUE(fleet.AddTenant("alpha", TestbedSeed()).ok());
  gateway::GatewayConfig gcfg;
  gcfg.workers = 1;
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &fleet,
                                gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  gateway::KeepAliveClient client(port.value());
  auto r = client.Get("/post?id=1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
  auto routed = client.Send(
      WithTenant(http::Request::Get("/post", {{"id", "1"}}), "alpha"));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->status, 200);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Snapshot migration shim
// ---------------------------------------------------------------------------

TEST(TenantSnapshots, QualifiedPathComposition) {
  EXPECT_EQ(resilience::TenantSnapshotPath("/var/lib/joza/snap", "alpha"),
            "/var/lib/joza/snap.alpha");
  EXPECT_EQ(resilience::TenantSnapshotPath("snap", "default"),
            "snap.default");
}

TEST(TenantSnapshots, LegacyFallbackIsDefaultTenantOnly) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  const std::string base = dir.path + "/snap";
  php::FragmentSet frags = TinySeed("legacy");
  ASSERT_TRUE(resilience::SaveRulesetSnapshot(base, frags, 7).ok());

  // The default tenant inherits the legacy un-suffixed snapshot.
  auto def = resilience::LoadTenantRulesetSnapshot(
      base, resilience::kDefaultTenantName);
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->version, 7u);

  // Other tenants never read it: a cold start, not a cross-tenant leak.
  auto other = resilience::LoadTenantRulesetSnapshot(base, "alpha");
  EXPECT_FALSE(other.ok());

  // Once a qualified snapshot exists it wins over the legacy file.
  ASSERT_TRUE(
      resilience::SaveRulesetSnapshot(
          resilience::TenantSnapshotPath(base,
                                         resilience::kDefaultTenantName),
          frags, 9)
          .ok());
  auto upgraded = resilience::LoadTenantRulesetSnapshot(
      base, resilience::kDefaultTenantName);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->version, 9u);
}

TEST(Fleet, WarmStartsFromLegacySnapshotAndPersistsQualified) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  const std::string base = dir.path + "/snap";
  ASSERT_TRUE(
      resilience::SaveRulesetSnapshot(base, TinySeed("legacy"), 3).ok());

  tenant::FleetOptions opts = ColdCapableOptions(dir);
  opts.snapshot_base = base;
  {
    tenant::Fleet fleet(opts);
    ASSERT_TRUE(
        fleet.AddTenant(tenant::kDefaultTenant, TinySeed("seed")).ok());
    ASSERT_TRUE(fleet.AddTenant("alpha", TinySeed("alpha")).ok());
    auto pin = fleet.Acquire(tenant::kDefaultTenant);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(pin.value()->ruleset_version(), 3u)
        << "the default tenant must warm-start from the legacy snapshot";
    auto alpha = fleet.Acquire("alpha");
    ASSERT_TRUE(alpha.ok());
    EXPECT_EQ(alpha.value()->ruleset_version(), 0u)
        << "non-default tenants start cold, not from the legacy file";

    // A ruleset update persists to the tenant-qualified path.
    ASSERT_TRUE(
        fleet
            .OnSourcesChanged("alpha", {{"u.php", "$q = 'SELECT 1';"}})
            .ok());
  }
  EXPECT_EQ(::access(resilience::TenantSnapshotPath(base, "alpha").c_str(),
                     F_OK),
            0);
  // A fresh fleet warm-starts alpha from its own qualified snapshot.
  tenant::Fleet second(opts);
  ASSERT_TRUE(second.AddTenant("alpha", TinySeed("alpha")).ok());
  auto pin = second.Acquire("alpha");
  ASSERT_TRUE(pin.ok());
  EXPECT_EQ(pin.value()->ruleset_version(), 1u);
}

// ---------------------------------------------------------------------------
// Demotion racing in-flight pins (TSan probe)
// ---------------------------------------------------------------------------

TEST(Fleet, DemotionRacesInFlightPins) {
  ScratchDir dir;
  ASSERT_FALSE(dir.path.empty());
  tenant::Fleet fleet(ColdCapableOptions(dir));
  ASSERT_TRUE(fleet.AddTenant("alpha", TestbedSeed()).ok());

  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 40;
  std::atomic<std::size_t> benign_ok{0};
  std::atomic<std::size_t> attacks_blocked{0};
  std::atomic<std::size_t> pin_failures{0};
  std::atomic<bool> stop{false};

  std::thread demoter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Failure is fine (the tenant may be mid-promotion); what must hold
      // is that pinned readers never observe a torn engine.
      (void)fleet.Demote("alpha");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      auto app = attack::MakeTestbed();
      const http::Request benign = http::Request::Get("/post", {{"id", "1"}});
      const http::Request exploit = ExploitRequest();
      for (int i = 0; i < kIters; ++i) {
        auto pin = fleet.Acquire("alpha");
        if (!pin.ok()) {
          pin_failures.fetch_add(1);
          continue;
        }
        // The pin keeps this engine alive across any concurrent demotion.
        app->SetQueryGate(pin.value()->MakeGate());
        if (app->Handle(benign).status == 200) benign_ok.fetch_add(1);
        if (app->Handle(exploit).status == 500) attacks_blocked.fetch_add(1);
        app->SetQueryGate(nullptr);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  demoter.join();

  EXPECT_EQ(pin_failures.load(), 0u)
      << "Acquire must coalesce with demotion, not fail";
  EXPECT_EQ(benign_ok.load() + attacks_blocked.load(), 2u * kThreads * kIters)
      << "every pinned request must see a full vocabulary: benign 200s and "
         "blocked attacks only";
  EXPECT_GT(fleet.stats().demotions, 0u);
}

}  // namespace
}  // namespace joza
