#include "nti/nti.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace joza::nti {
namespace {

using http::Input;
using http::InputKind;

Input Get(std::string name, std::string value) {
  return Input{InputKind::kGet, std::move(name), std::move(value)};
}

// --- Figure 2 of the paper -------------------------------------------------

TEST(Nti, Figure2A_BenignInputSafe) {
  // Part A: id=1 appears in the query but covers no critical token.
  NtiAnalyzer nti;
  auto r = nti.Analyze("SELECT * FROM data WHERE ID=1", {Get("id", "1")});
  EXPECT_FALSE(r.attack_detected);
}

TEST(Nti, Figure2B_TautologyDetected) {
  // Part B: '-1 OR 1 = 1' matches verbatim and covers the OR token.
  NtiAnalyzer nti;
  auto r = nti.Analyze("SELECT * FROM data WHERE ID=-1 OR 1=1",
                       {Get("id", "-1 OR 1=1")});
  EXPECT_TRUE(r.attack_detected);
  ASSERT_FALSE(r.tainted_critical_tokens.empty());
  bool covered_or = false;
  for (const auto& t : r.tainted_critical_tokens) {
    if (EqualsIgnoreCase(t.text, "OR")) covered_or = true;
  }
  EXPECT_TRUE(covered_or);
}

TEST(Nti, Figure2C_MagicQuoteEvasionUndetected) {
  // Part C: enough escaped quotes inside a comment block push the
  // difference ratio above the 20% threshold — attack missed.
  std::string input = "-1 OR 1=1/*'''''*/";
  std::string query = "SELECT * FROM data WHERE ID=-1 OR 1=1/*\\'\\'\\'\\'\\'*/";
  NtiAnalyzer nti;  // default threshold 0.20
  auto r = nti.Analyze(query, {Get("id", input)});
  EXPECT_FALSE(r.attack_detected)
      << "the paper's NTI evasion must succeed against NTI alone";
}

// --- Core semantics ----------------------------------------------------------

TEST(Nti, BenignEchoInsideStringLiteralSafe) {
  // User text with SQL words quoted as data: the string literal is a single
  // non-critical token, so even a verbatim echo is safe.
  NtiAnalyzer nti;
  auto r = nti.Analyze(
      "SELECT id FROM posts WHERE title LIKE '%select union or%'",
      {Get("s", "select union or")});
  EXPECT_FALSE(r.attack_detected);
}

TEST(Nti, UnionInjectionDetected) {
  NtiAnalyzer nti;
  std::string payload = "-1 UNION SELECT pass FROM wp_users";
  auto r = nti.Analyze("SELECT title FROM wp_posts WHERE id = " + payload,
                       {Get("id", payload)});
  EXPECT_TRUE(r.attack_detected);
}

TEST(Nti, ApproximateMatchStillDetects) {
  // The application trims three trailing spaces: small edit distance, the
  // ratio stays under the threshold, and the attack is still caught.
  NtiAnalyzer nti;
  std::string payload = "x' OR 1=1 -- pad pad pad";  // 24 chars in query
  std::string input = payload + "   ";               // attacker appends 3
  std::string query = "SELECT * FROM t WHERE name = '" + payload;
  auto r = nti.Analyze(query, {Get("name", input)});
  EXPECT_TRUE(r.attack_detected);  // ratio 3/24 = 0.125 < 0.20
}

TEST(Nti, ShortInputsSkipped) {
  NtiAnalyzer nti;  // min_input_length = 3
  auto r = nti.Analyze("SELECT * FROM t WHERE a = 1 OR 2", {Get("x", "OR")});
  EXPECT_FALSE(r.attack_detected);
  EXPECT_EQ(r.inputs_considered, 0u);
  EXPECT_EQ(r.inputs_skipped, 1u);
}

TEST(Nti, OverlongInputsSkipped) {
  NtiAnalyzer nti;
  std::string huge(10000, 'x');
  auto r = nti.Analyze("SELECT 1", {Get("blob", huge)});
  EXPECT_FALSE(r.attack_detected);
  EXPECT_EQ(r.inputs_skipped, 1u);
}

TEST(Nti, MarkingsFromDifferentInputsNotCombined) {
  // Payload-construction attack (Section III-A): three harmless pieces
  // concatenate into an attack, but no single input covers a critical
  // token wholly enough... q1 alone DOES cover "OR" here, so split the
  // attack so that each piece covers none.
  NtiAnalyzer nti;
  // Query built from q1="1 O" q2="R TR" q3="UE" => "1 OR TRUE"
  auto r = nti.Analyze("SELECT * FROM data WHERE ID=1 OR TRUE",
                       {Get("q1", "1 O"), Get("q2", "R TR"), Get("q3", "UE")});
  EXPECT_FALSE(r.attack_detected)
      << "split payloads evade NTI by construction (the PTI half catches "
         "them in the hybrid)";
}

TEST(Nti, InputInCookieDetected) {
  NtiAnalyzer nti;
  std::string payload = "1 OR 1=1";
  auto r = nti.Analyze(
      "SELECT * FROM sessions WHERE uid = 1 OR 1=1",
      {Input{InputKind::kCookie, "uid", payload}});
  EXPECT_TRUE(r.attack_detected);
  ASSERT_FALSE(r.markings.empty());
  EXPECT_EQ(r.markings[0].input_kind, InputKind::kCookie);
}

TEST(Nti, ThresholdZeroRequiresExactMatch) {
  NtiConfig cfg;
  cfg.threshold = 0.0;
  NtiAnalyzer nti(cfg);
  // One byte changed: no marking at threshold 0.
  auto r = nti.Analyze("SELECT * FROM t WHERE a = 1 OR 2=2",
                       {Get("a", "1 OR 2=3")});
  EXPECT_FALSE(r.attack_detected);
  // Verbatim: detected.
  r = nti.Analyze("SELECT * FROM t WHERE a = 1 OR 2=2", {Get("a", "1 OR 2=2")});
  EXPECT_TRUE(r.attack_detected);
}

TEST(Nti, HigherThresholdCatchesMoreTransformedAttacks) {
  // Numeric-context payload with 5 quotes in a comment block; magic quotes
  // escape them. Ratio = 5/(12+10) ~ 0.227: over a strict threshold,
  // under a loose one.
  std::string input = "1 OR 2=2/*'''''*/";
  std::string query =
      "SELECT * FROM t WHERE a = 1 OR 2=2/*\\'\\'\\'\\'\\'*/";
  NtiConfig strict;
  strict.threshold = 0.10;
  NtiConfig loose;
  loose.threshold = 0.50;
  auto r_strict = NtiAnalyzer(strict).Analyze(query, {Get("a", input)});
  auto r_loose = NtiAnalyzer(loose).Analyze(query, {Get("a", input)});
  EXPECT_FALSE(r_strict.attack_detected);
  EXPECT_TRUE(r_loose.attack_detected);
}

TEST(Nti, BoundedAndUnboundedAgree) {
  NtiConfig bounded;
  bounded.bounded_search = true;
  NtiConfig unbounded;
  unbounded.bounded_search = false;
  unbounded.exact_fast_path = false;
  const std::string query =
      "SELECT * FROM t WHERE a = 'pay\\'load' AND b = 1 OR 1=1";
  const std::vector<Input> inputs = {Get("a", "pay'load"),
                                     Get("b", "1 OR 1=1")};
  auto r1 = NtiAnalyzer(bounded).Analyze(query, inputs);
  auto r2 = NtiAnalyzer(unbounded).Analyze(query, inputs);
  EXPECT_EQ(r1.attack_detected, r2.attack_detected);
  EXPECT_TRUE(r1.attack_detected);
}

TEST(Nti, NoInputsNoAttack) {
  NtiAnalyzer nti;
  auto r = nti.Analyze("SELECT * FROM t WHERE 1 = 1 OR 2 = 2", {});
  EXPECT_FALSE(r.attack_detected);
}

TEST(Nti, EmptyQuery) {
  NtiAnalyzer nti;
  auto r = nti.Analyze("", {Get("a", "abc")});
  EXPECT_FALSE(r.attack_detected);
}

TEST(Nti, MarkingMetadataPopulated) {
  NtiAnalyzer nti;
  auto r = nti.Analyze("SELECT * FROM t WHERE a = 1 OR 1=1",
                       {Get("bad", "1 OR 1=1")});
  ASSERT_EQ(r.markings.size(), 1u);
  EXPECT_EQ(r.markings[0].input_name, "bad");
  EXPECT_EQ(r.markings[0].distance, 0u);
  EXPECT_DOUBLE_EQ(r.markings[0].ratio, 0.0);
  EXPECT_EQ(r.markings[0].span.length(), 8u);
}

}  // namespace
}  // namespace joza::nti
