#include "webapp/application.h"

#include <gtest/gtest.h>

#include "util/codec.h"

namespace joza::webapp {
namespace {

TEST(Transforms, MagicQuotes) {
  EXPECT_EQ(ApplyTransform(Transform::kMagicQuotes, "1' OR '1'='1"),
            "1\\' OR \\'1\\'=\\'1");
}

TEST(Transforms, TrimAndCollapse) {
  EXPECT_EQ(ApplyTransform(Transform::kTrim, "  x  "), "x");
  EXPECT_EQ(ApplyTransform(Transform::kCollapseSpaces, "a   b"), "a b");
}

TEST(Transforms, Base64RejectsGarbage) {
  EXPECT_EQ(ApplyTransform(Transform::kBase64Decode, "!!!"), "");
  EXPECT_EQ(ApplyTransform(Transform::kBase64Decode, Base64Encode("abc")),
            "abc");
}

TEST(Transforms, IntCastSanitizes) {
  EXPECT_EQ(ApplyTransform(Transform::kIntCast, "5 OR 1=1"), "5");
  EXPECT_EQ(ApplyTransform(Transform::kIntCast, "-12"), "-12");
  EXPECT_EQ(ApplyTransform(Transform::kIntCast, "abc"), "0");
}

TEST(Transforms, ChainApplication) {
  TransformChain chain = {Transform::kBase64Decode, Transform::kTrim};
  EXPECT_EQ(ApplyChain(chain, Base64Encode("  x  ")), "x");
}

TEST(Transforms, ChainTransformsInputDetection) {
  EXPECT_FALSE(ChainTransformsInput({}));
  EXPECT_FALSE(ChainTransformsInput(
      {Transform::kMagicQuotes, Transform::kStripSlashes}));
  EXPECT_TRUE(ChainTransformsInput({Transform::kMagicQuotes}));
  EXPECT_TRUE(ChainTransformsInput({Transform::kTrim}));
}

TEST(Endpoint, BuildQueryUnquoted) {
  Endpoint ep{"/p", "id", {}, "SELECT * FROM t WHERE id = ", " LIMIT 5",
              false, ResponseMode::kData};
  EXPECT_EQ(ep.BuildQuery("7"), "SELECT * FROM t WHERE id = 7 LIMIT 5");
}

TEST(Endpoint, BuildQueryQuoted) {
  Endpoint ep{"/p", "name", {}, "SELECT * FROM t WHERE n = ", "", true,
              ResponseMode::kData};
  EXPECT_EQ(ep.BuildQuery("x"), "SELECT * FROM t WHERE n = 'x'");
}

TEST(Endpoint, SynthesizedSourceYieldsMatchingFragments) {
  Endpoint ep{"/p", "id", {Transform::kTrim},
              "SELECT * FROM records WHERE ID=", " LIMIT 5", false,
              ResponseMode::kData};
  php::FragmentSet set;
  set.AddSource({"p.php", ep.SynthesizePhpSource()});
  EXPECT_TRUE(set.Contains("SELECT * FROM records WHERE ID="));
  EXPECT_TRUE(set.Contains(" LIMIT 5"));
}

TEST(Endpoint, SynthesizedQuotedSourceKeepsQuotesInFragments) {
  Endpoint ep{"/p", "n", {}, "SELECT * FROM t WHERE n = ", " LIMIT 1", true,
              ResponseMode::kData};
  php::FragmentSet set;
  set.AddSource({"p.php", ep.SynthesizePhpSource()});
  EXPECT_TRUE(set.Contains("SELECT * FROM t WHERE n = '"));
  EXPECT_TRUE(set.Contains("' LIMIT 1"));
}

class WordpressAppTest : public ::testing::Test {
 protected:
  void SetUp() override { app_ = MakeWordpressLikeApp(/*seed=*/1); }
  std::unique_ptr<Application> app_;
};

TEST_F(WordpressAppTest, FrontPageListsPosts) {
  auto resp = app_->Handle(http::Request::Get("/", {}));
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("Post "), std::string::npos);
  // Boilerplate + endpoint query all executed.
  EXPECT_GE(app_->last_stats().queries_issued, 7u);
}

TEST_F(WordpressAppTest, PostPageSanitized) {
  auto resp = app_->Handle(http::Request::Get("/post", {{"id", "3"}}));
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("Post 3"), std::string::npos);
  // intval() neutralizes injection in the core route.
  resp = app_->Handle(
      http::Request::Get("/post", {{"id", "3 UNION SELECT 1,2,3"}}));
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("Post 3"), std::string::npos);
  EXPECT_EQ(resp.body.find("error"), std::string::npos);
}

TEST_F(WordpressAppTest, SearchEscaped) {
  auto resp = app_->Handle(http::Request::Get("/search", {{"s", "Post 1"}}));
  EXPECT_EQ(resp.status, 200);
  // Injection attempt stays inside the string literal.
  resp = app_->Handle(
      http::Request::Get("/search", {{"s", "x' OR '1'='1"}}));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.find("Database error"), std::string::npos);
  EXPECT_EQ(resp.body, "<ul></ul>");  // no titles contain that junk
}

TEST_F(WordpressAppTest, CommentWriteWorks) {
  auto resp = app_->Handle(
      http::Request::Post("/comment", {{"body", "nice article!"}}));
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("rows affected: 1"), std::string::npos);
  auto check = app_->database().Execute("SELECT COUNT(*) FROM wp_comments");
  EXPECT_EQ(check->rows[0][0].as_int(), 1);
}

TEST_F(WordpressAppTest, UnknownPath404) {
  auto resp = app_->Handle(http::Request::Get("/nope", {}));
  EXPECT_EQ(resp.status, 404);
}

TEST_F(WordpressAppTest, VulnerablePluginExploitable) {
  // A typical vulnerable plugin: unquoted numeric context, no sanitization.
  app_->AddEndpoint(Endpoint{"/plugin", "id", {},
                             "SELECT title FROM wp_posts WHERE id = ", "",
                             false, ResponseMode::kData},
                    "wp-content/plugins/vuln.php");
  auto resp = app_->Handle(http::Request::Get(
      "/plugin", {{"id", "-1 UNION SELECT pass FROM wp_users"}}));
  EXPECT_NE(resp.body.find("s3cr3t_hash"), std::string::npos)
      << "union exploit must exfiltrate the password hash";
}

TEST_F(WordpressAppTest, GateBlocksQueries) {
  app_->AddEndpoint(Endpoint{"/plugin", "id", {},
                             "SELECT title FROM wp_posts WHERE id = ", "",
                             false, ResponseMode::kData},
                    "wp-content/plugins/vuln.php");
  app_->SetQueryGate([](std::string_view, const http::Request&) {
    return GateDecision{GateDecision::Action::kBlockTerminate, "test"};
  });
  auto resp = app_->Handle(http::Request::Get("/plugin", {{"id", "1"}}));
  EXPECT_EQ(resp.status, 500);
  EXPECT_TRUE(resp.body.empty());  // blank page on termination
  EXPECT_GT(app_->last_stats().queries_blocked, 0u);
}

TEST_F(WordpressAppTest, ErrorVirtualizationGate) {
  app_->AddEndpoint(Endpoint{"/plugin", "id", {},
                             "SELECT title FROM wp_posts WHERE id = ", "",
                             false, ResponseMode::kBlind},
                    "wp-content/plugins/vuln.php");
  app_->SetQueryGate([](std::string_view sql, const http::Request&) {
    if (sql.find("UNION") != std::string_view::npos) {
      return GateDecision{GateDecision::Action::kBlockError, "test"};
    }
    return GateDecision{GateDecision::Action::kAllow, ""};
  });
  // Benign flows normally; blocked query surfaces as the app's own error
  // page, not a crash.
  auto resp = app_->Handle(http::Request::Get("/plugin", {{"id", "1"}}));
  EXPECT_EQ(resp.status, 200);
  resp = app_->Handle(
      http::Request::Get("/plugin", {{"id", "-1 UNION SELECT 1"}}));
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("Error"), std::string::npos);
}

TEST_F(WordpressAppTest, DoubleBlindTimingChannel) {
  app_->AddEndpoint(Endpoint{"/plugin", "id", {},
                             "SELECT title FROM wp_posts WHERE id = ", "",
                             false, ResponseMode::kDoubleBlind},
                    "wp-content/plugins/vuln.php");
  auto fast = app_->Handle(http::Request::Get("/plugin", {{"id", "1"}}));
  auto slow = app_->Handle(http::Request::Get(
      "/plugin", {{"id", "1 AND SLEEP(3)"}}));
  EXPECT_EQ(fast.body, slow.body) << "double-blind body must be constant";
  EXPECT_GE(slow.virtual_time_ms - fast.virtual_time_ms, 2999.0)
      << "timing channel must leak";
}

TEST_F(WordpressAppTest, Base64PluginDecodesInput) {
  app_->AddEndpoint(Endpoint{"/b64", "data", {Transform::kBase64Decode},
                             "SELECT title FROM wp_posts WHERE id = ", "",
                             false, ResponseMode::kData},
                    "wp-content/plugins/b64.php");
  auto resp = app_->Handle(http::Request::Get(
      "/b64", {{"data", Base64Encode("-1 UNION SELECT pass FROM wp_users")}}));
  EXPECT_NE(resp.body.find("s3cr3t_hash"), std::string::npos);
}

}  // namespace
}  // namespace joza::webapp
