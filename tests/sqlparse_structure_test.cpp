#include "sqlparse/structure.h"

#include <gtest/gtest.h>

namespace joza::sql {
namespace {

std::uint64_t MustHash(std::string_view q) {
  auto h = StructureHashOf(q);
  EXPECT_TRUE(h.ok()) << q;
  return h.ok() ? h.value() : 0;
}

TEST(Structure, DataChangesPreserveHash) {
  // The structure cache's core guarantee: literal values don't affect shape.
  EXPECT_EQ(MustHash("SELECT * FROM t WHERE id = 5"),
            MustHash("SELECT * FROM t WHERE id = 99999"));
  EXPECT_EQ(MustHash("SELECT * FROM t WHERE name = 'alice'"),
            MustHash("SELECT * FROM t WHERE name = 'bob the builder'"));
  EXPECT_EQ(MustHash("INSERT INTO t (a) VALUES ('x')"),
            MustHash("INSERT INTO t (a) VALUES ('completely different')"));
}

TEST(Structure, InjectionChangesHash) {
  const auto benign = MustHash("SELECT * FROM t WHERE id = 5");
  EXPECT_NE(benign, MustHash("SELECT * FROM t WHERE id = 5 OR 1 = 1"));
  EXPECT_NE(benign,
            MustHash("SELECT * FROM t WHERE id = 5 UNION SELECT version()"));
}

TEST(Structure, DifferentTablesDiffer) {
  EXPECT_NE(MustHash("SELECT * FROM a"), MustHash("SELECT * FROM b"));
}

TEST(Structure, DifferentColumnsDiffer) {
  EXPECT_NE(MustHash("SELECT x FROM t"), MustHash("SELECT y FROM t"));
}

TEST(Structure, OperatorMatters) {
  EXPECT_NE(MustHash("SELECT * FROM t WHERE a = 1"),
            MustHash("SELECT * FROM t WHERE a < 1"));
}

TEST(Structure, LimitPresenceMattersButValueDoesNot) {
  EXPECT_EQ(MustHash("SELECT a FROM t LIMIT 5"),
            MustHash("SELECT a FROM t LIMIT 10"));
  EXPECT_NE(MustHash("SELECT a FROM t LIMIT 5"), MustHash("SELECT a FROM t"));
}

TEST(Structure, TableNameCaseInsensitive) {
  EXPECT_EQ(MustHash("SELECT * FROM Users"), MustHash("SELECT * FROM users"));
}

TEST(Structure, IntVsStringLiteralSameSlotDiffers) {
  // Changing the literal *kind* is a structural change.
  EXPECT_NE(MustHash("SELECT * FROM t WHERE a = 1"),
            MustHash("SELECT * FROM t WHERE a = '1'"));
}

TEST(Structure, UnionAllVsUnionDiffers) {
  EXPECT_NE(MustHash("SELECT a FROM t UNION SELECT b FROM u"),
            MustHash("SELECT a FROM t UNION ALL SELECT b FROM u"));
}

TEST(Structure, SubqueryStructureCounts) {
  EXPECT_NE(MustHash("SELECT * FROM t WHERE id IN (SELECT id FROM u)"),
            MustHash("SELECT * FROM t WHERE id IN (SELECT pid FROM u)"));
  EXPECT_EQ(
      MustHash("SELECT * FROM t WHERE id IN (SELECT id FROM u WHERE x = 1)"),
      MustHash("SELECT * FROM t WHERE id IN (SELECT id FROM u WHERE x = 2)"));
}

TEST(Structure, UnparseableQueryFails) {
  EXPECT_FALSE(StructureHashOf("SELECT FROM WHERE").ok());
}

TEST(TokenSkeleton, BlanksData) {
  EXPECT_EQ(TokenSkeleton("SELECT * FROM t WHERE id = 42"),
            "SELECT * FROM <id> WHERE <id> = <num>");
  EXPECT_EQ(TokenSkeleton("SELECT 'abc'"), "SELECT <str>");
}

TEST(TokenSkeleton, HashConsistentWithSkeleton) {
  EXPECT_EQ(TokenSkeletonHash("SELECT * FROM t WHERE id = 1"),
            TokenSkeletonHash("SELECT * FROM t WHERE id = 777"));
  EXPECT_NE(TokenSkeletonHash("SELECT * FROM t WHERE id = 1"),
            TokenSkeletonHash("SELECT * FROM t WHERE id = 1 OR 1 = 1"));
}

TEST(TokenSkeleton, KeywordCaseNormalized) {
  EXPECT_EQ(TokenSkeletonHash("select * from T"),
            TokenSkeletonHash("SELECT * FROM t"));
}

}  // namespace
}  // namespace joza::sql
