#include "sqlparse/keywords.h"

#include <gtest/gtest.h>

namespace joza::sql {
namespace {

TEST(Keywords, CoreKeywordsRecognized) {
  for (const char* kw : {"SELECT", "union", "Or", "AND", "WHERE", "from",
                         "LIMIT", "order", "BY", "insert", "VALUES"}) {
    EXPECT_TRUE(IsKeyword(kw)) << kw;
  }
}

TEST(Keywords, NonKeywordsRejected) {
  for (const char* w : {"users", "id", "wp_posts", "", "SELECTX", "uni on"}) {
    EXPECT_FALSE(IsKeyword(w)) << w;
  }
}

TEST(Keywords, BuiltinFunctionsRecognized) {
  for (const char* f : {"version", "CHAR", "concat", "SLEEP", "count",
                        "group_concat", "md5", "benchmark"}) {
    EXPECT_TRUE(IsBuiltinFunction(f)) << f;
  }
}

TEST(Keywords, NonFunctionsRejected) {
  for (const char* f : {"my_func", "tbl", "", "versions"}) {
    EXPECT_FALSE(IsBuiltinFunction(f)) << f;
  }
}

// The binary search requires sorted tables; probe boundaries.
TEST(Keywords, SortedTableBoundaries) {
  EXPECT_TRUE(IsKeyword("ALL"));    // first
  EXPECT_TRUE(IsKeyword("XOR"));    // last
  EXPECT_TRUE(IsKeyword("AUTO_INCREMENT"));
  EXPECT_TRUE(IsBuiltinFunction("ABS"));      // first
  EXPECT_TRUE(IsBuiltinFunction("VERSION"));  // last
}

TEST(ContainsSqlToken, FragmentFiltering) {
  // Fragments retained by PTI must contain at least one critical token.
  EXPECT_TRUE(ContainsSqlToken("SELECT * FROM records WHERE ID="));
  EXPECT_TRUE(ContainsSqlToken(" LIMIT 5"));
  EXPECT_TRUE(ContainsSqlToken("OR"));
  EXPECT_TRUE(ContainsSqlToken("="));
  EXPECT_TRUE(ContainsSqlToken("-- comment"));
  EXPECT_FALSE(ContainsSqlToken("id"));          // bare identifier
  EXPECT_FALSE(ContainsSqlToken("hello world"));
  EXPECT_FALSE(ContainsSqlToken("12345"));
  EXPECT_FALSE(ContainsSqlToken(""));
}

}  // namespace
}  // namespace joza::sql
