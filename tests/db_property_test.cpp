// Property-style sweeps over the database engine: the evaluator must agree
// with directly computed ground truth on randomized data.
#include <gtest/gtest.h>

#include <algorithm>

#include "db/database.h"
#include "sqlparse/parser.h"
#include "sqlparse/printer.h"
#include "util/rng.h"

namespace joza::db {
namespace {

class DbPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  struct Fixture {
    Database db;
    std::vector<std::int64_t> a, b;
    std::vector<std::string> s;
  };

  Fixture MakeFixture(Rng& rng, std::size_t rows) {
    Fixture f;
    f.db.Execute("CREATE TABLE t (a INT, b INT, s TEXT)");
    for (std::size_t i = 0; i < rows; ++i) {
      f.a.push_back(rng.NextInRange(-20, 20));
      f.b.push_back(rng.NextInRange(0, 9));
      f.s.push_back(rng.NextToken(1 + rng.NextBelow(6)));
      f.db.InsertRow("t", {Value(f.a.back()), Value(f.b.back()),
                           Value(f.s.back())});
    }
    return f;
  }
};

TEST_P(DbPropertyTest, WhereComparisonMatchesGroundTruth) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    Fixture f = MakeFixture(rng, 1 + rng.NextBelow(30));
    const std::int64_t pivot = rng.NextInRange(-20, 20);
    auto r = f.db.Execute("SELECT COUNT(*) FROM t WHERE a > " +
                          std::to_string(pivot));
    ASSERT_TRUE(r.ok());
    const auto expected = std::count_if(
        f.a.begin(), f.a.end(), [pivot](std::int64_t v) { return v > pivot; });
    EXPECT_EQ(r->rows[0][0].as_int(), expected);
  }
}

TEST_P(DbPropertyTest, AggregatesMatchGroundTruth) {
  Rng rng(GetParam() * 7 + 1);
  Fixture f = MakeFixture(rng, 2 + rng.NextBelow(40));
  auto r = f.db.Execute("SELECT SUM(a), MIN(a), MAX(a), COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  std::int64_t sum = 0, mn = f.a[0], mx = f.a[0];
  for (std::int64_t v : f.a) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_EQ(r->rows[0][0].as_int(), sum);
  EXPECT_EQ(r->rows[0][1].as_int(), mn);
  EXPECT_EQ(r->rows[0][2].as_int(), mx);
  EXPECT_EQ(r->rows[0][3].as_int(), static_cast<std::int64_t>(f.a.size()));
}

TEST_P(DbPropertyTest, OrderByProducesSortedOutput) {
  Rng rng(GetParam() * 31 + 3);
  Fixture f = MakeFixture(rng, 1 + rng.NextBelow(40));
  auto r = f.db.Execute("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_LE(r->rows[i - 1][0].as_int(), r->rows[i][0].as_int());
  }
  r = f.db.Execute("SELECT a FROM t ORDER BY a DESC");
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_GE(r->rows[i - 1][0].as_int(), r->rows[i][0].as_int());
  }
}

TEST_P(DbPropertyTest, LimitOffsetSliceInvariant) {
  Rng rng(GetParam() * 131 + 5);
  Fixture f = MakeFixture(rng, 5 + rng.NextBelow(30));
  auto all = f.db.Execute("SELECT a FROM t ORDER BY a, s");
  ASSERT_TRUE(all.ok());
  const std::size_t n = all->rows.size();
  const std::size_t offset = rng.NextBelow(n);
  const std::size_t limit = 1 + rng.NextBelow(n);
  auto sliced = f.db.Execute("SELECT a FROM t ORDER BY a, s LIMIT " +
                             std::to_string(limit) + " OFFSET " +
                             std::to_string(offset));
  ASSERT_TRUE(sliced.ok());
  const std::size_t expected = std::min(limit, n - offset);
  ASSERT_EQ(sliced->rows.size(), expected);
  for (std::size_t i = 0; i < expected; ++i) {
    EXPECT_EQ(sliced->rows[i][0].as_int(), all->rows[offset + i][0].as_int());
  }
}

TEST_P(DbPropertyTest, UnionAllCountsAdd) {
  Rng rng(GetParam() * 733 + 11);
  Fixture f = MakeFixture(rng, 1 + rng.NextBelow(20));
  auto r = f.db.Execute(
      "SELECT a FROM t WHERE b < 5 UNION ALL SELECT a FROM t WHERE b >= 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), f.a.size());
}

TEST_P(DbPropertyTest, GroupByPartitionsRows) {
  Rng rng(GetParam() * 997 + 13);
  Fixture f = MakeFixture(rng, 1 + rng.NextBelow(40));
  auto r = f.db.Execute("SELECT b, COUNT(*) FROM t GROUP BY b");
  ASSERT_TRUE(r.ok());
  std::int64_t total = 0;
  for (const auto& row : r->rows) total += row[1].as_int();
  EXPECT_EQ(total, static_cast<std::int64_t>(f.a.size()));
}

TEST_P(DbPropertyTest, ParsePrintParseExecutesIdentically) {
  // Executing the printed form of a parsed query gives the same result.
  Rng rng(GetParam() * 17 + 19);
  Fixture f = MakeFixture(rng, 1 + rng.NextBelow(25));
  const std::string queries[] = {
      "SELECT a, b FROM t WHERE a > 0 AND b < 5 ORDER BY a, b LIMIT 7",
      "SELECT COUNT(*), SUM(b) FROM t WHERE s LIKE 'a%'",
      "SELECT DISTINCT b FROM t ORDER BY b",
  };
  for (const std::string& q : queries) {
    auto parsed = sql::Parse(q);
    ASSERT_TRUE(parsed.ok());
    auto direct = f.db.Execute(q);
    auto printed = f.db.Execute(sql::Print(parsed.value()));
    ASSERT_TRUE(direct.ok() && printed.ok()) << q;
    ASSERT_EQ(direct->rows.size(), printed->rows.size()) << q;
    for (std::size_t i = 0; i < direct->rows.size(); ++i) {
      for (std::size_t j = 0; j < direct->rows[i].size(); ++j) {
        EXPECT_EQ(Value::OrderCompare(direct->rows[i][j], printed->rows[i][j]),
                  0)
            << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbPropertyTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace joza::db
