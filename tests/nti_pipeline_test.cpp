// The staged matcher pipeline's observable behavior: stage counters, the
// per-input tier histogram, fallback conditions, and the multi-pattern
// exact stage.
#include <gtest/gtest.h>

#include <string>

#include "nti/nti.h"
#include "sqlparse/critical.h"
#include "sqlparse/lexer.h"
#include "util/rng.h"

namespace joza::nti {
namespace {

NtiConfig StagedConfig() {
  NtiConfig cfg;
  cfg.tier = MatchTier::kStaged;
  return cfg;
}

TEST(MatchTierNames, Stable) {
  EXPECT_STREQ(MatchTierName(MatchTier::kReference), "reference");
  EXPECT_STREQ(MatchTierName(MatchTier::kBounded), "bounded");
  EXPECT_STREQ(MatchTierName(MatchTier::kStaged), "staged");
}

TEST(Pipeline, ExactHitCountedAndNoDp) {
  const NtiAnalyzer nti(StagedConfig());
  const NtiResult r = nti.Analyze("SELECT * FROM t WHERE id=-1 OR 1=1",
                                  {{http::InputKind::kGet, "id", "-1 OR 1=1"}});
  EXPECT_TRUE(r.attack_detected);
  EXPECT_EQ(r.exact_hits, 1u);
  EXPECT_EQ(r.dp_runs, 0u);
  EXPECT_EQ(r.tier_staged, 1u);
  EXPECT_EQ(r.tier_bounded, 0u);
  EXPECT_EQ(r.tier_reference, 0u);
}

TEST(Pipeline, QGramSeedingRejectsDisjointInput) {
  const NtiAnalyzer nti(StagedConfig());
  // Nothing of "zzzzzzzz" occurs in the query: the seeding stage must
  // discard it before any DP runs.
  const NtiResult r = nti.Analyze("SELECT name FROM users WHERE id = 7",
                                  {{http::InputKind::kGet, "q", "zzzzzzzz"}});
  EXPECT_FALSE(r.attack_detected);
  EXPECT_EQ(r.seed_rejects, 1u);
  EXPECT_EQ(r.seed_candidates, 0u);
  EXPECT_EQ(r.dp_runs, 0u);
}

TEST(Pipeline, KernelRejectsSeedSurvivor) {
  const NtiAnalyzer nti(StagedConfig());
  // Every bigram of "abcdefgh" except bc/de/fg occurs in the query, so the
  // q-gram filter passes it — but the true distance (3 inserted spaces)
  // exceeds the threshold bound (ceil(0.2*8/0.8) = 2), which the Myers
  // kernel proves without a DP run.
  const NtiResult r = nti.Analyze("SELECT ab cd ef gh",
                                  {{http::InputKind::kGet, "q", "abcdefgh"}});
  EXPECT_FALSE(r.attack_detected);
  EXPECT_EQ(r.seed_candidates, 1u);
  EXPECT_EQ(r.kernel_rejects, 1u);
  EXPECT_EQ(r.dp_runs, 0u);
}

TEST(Pipeline, SurvivorVerifiedByDp) {
  const NtiAnalyzer nti(StagedConfig());
  // One escape backslash: distance 1 within the bound (ceil(0.2*7/0.8) =
  // 2), so the DP must run and report the true distance.
  const NtiResult r = nti.Analyze("SELECT * FROM t WHERE a = 'x\\' OR 1'",
                                  {{http::InputKind::kGet, "a", "x' OR 1"}});
  EXPECT_EQ(r.seed_candidates, 1u);
  EXPECT_EQ(r.kernel_rejects, 0u);
  EXPECT_EQ(r.dp_runs, 1u);
  ASSERT_EQ(r.markings.size(), 1u);
  EXPECT_EQ(r.markings[0].distance, 1u);
}

TEST(Pipeline, OversizedInputFallsBackToBounded) {
  const NtiAnalyzer nti(StagedConfig());
  const std::string big(80, 'a');  // > 64 bytes: no bit-parallel kernel
  const NtiResult r = nti.Analyze("SELECT " + big + " FROM t",
                                  {{http::InputKind::kGet, "q", big}});
  EXPECT_EQ(r.tier_bounded, 1u);
  EXPECT_EQ(r.tier_staged, 0u);
  EXPECT_EQ(r.exact_hits, 1u);  // the bounded tier's find fast path
}

TEST(Pipeline, NonAsciiInputFallsBackToBounded) {
  const NtiAnalyzer nti(StagedConfig());
  const NtiResult r =
      nti.Analyze("SELECT * FROM t WHERE name = 'caf\xC3\xA9 zzz'",
                  {{http::InputKind::kGet, "name", "caf\xC3\xA9 zzz"}});
  EXPECT_EQ(r.tier_bounded, 1u);
  EXPECT_EQ(r.tier_staged, 0u);
}

TEST(Pipeline, ThresholdAtOneFallsBackToBounded) {
  NtiConfig cfg = StagedConfig();
  cfg.threshold = 1.0;  // no finite bound exists
  const NtiAnalyzer nti(cfg);
  const NtiResult r = nti.Analyze("SELECT 1 FROM t",
                                  {{http::InputKind::kGet, "q", "abc"}});
  EXPECT_EQ(r.tier_bounded, 1u);
  EXPECT_EQ(r.tier_staged, 0u);
}

TEST(Pipeline, TierHistogramMatchesConfiguredTier) {
  const std::vector<http::Input> inputs = {
      {http::InputKind::kGet, "a", "alpha"},
      {http::InputKind::kGet, "b", "beta"}};
  for (MatchTier tier :
       {MatchTier::kReference, MatchTier::kBounded, MatchTier::kStaged}) {
    NtiConfig cfg;
    cfg.tier = tier;
    const NtiResult r =
        NtiAnalyzer(cfg).Analyze("SELECT alpha, beta FROM t", inputs);
    EXPECT_EQ(r.inputs_considered, 2u);
    EXPECT_EQ(r.tier_reference + r.tier_bounded + r.tier_staged, 2u);
    switch (tier) {
      case MatchTier::kReference: EXPECT_EQ(r.tier_reference, 2u); break;
      case MatchTier::kBounded: EXPECT_EQ(r.tier_bounded, 2u); break;
      case MatchTier::kStaged: EXPECT_EQ(r.tier_staged, 2u); break;
    }
  }
}

TEST(Pipeline, MultiPatternExactStageResolvesManyInputs) {
  // A query long enough to amortize the automaton build, with many
  // eligible inputs that all occur verbatim: every one must resolve in the
  // exact stage, zero DP runs.
  Rng rng(5);
  std::vector<http::Input> inputs;
  std::string query = "SELECT ";
  for (int i = 0; i < 8; ++i) {
    const std::string value = rng.NextToken(6);
    inputs.push_back({http::InputKind::kGet, "p" + std::to_string(i), value});
    query += value + ", ";
  }
  query += "filler FROM t WHERE pad = '" + std::string(400, 'x') + "'";

  // Builtin planner defaults: 8 inputs over a ~450-byte query amortize the
  // automaton build, so the exact stage runs multi-pattern.
  NtiConfig cfg = StagedConfig();
  const NtiResult r = NtiAnalyzer(cfg).Analyze(query, inputs);
  EXPECT_EQ(r.inputs_considered, 8u);
  EXPECT_EQ(r.exact_hits, 8u);
  EXPECT_EQ(r.dp_runs, 0u);
  EXPECT_EQ(r.markings.size(), 8u);
  EXPECT_EQ(r.planner_exact_automaton, 8u);
  EXPECT_EQ(r.planner_exact_find, 0u);
  EXPECT_EQ(r.planner_calibrated, 0u);  // no cost model loaded
  // Duplicate values share one automaton pattern but still both resolve.
  inputs.push_back({http::InputKind::kGet, "dup", inputs[0].value});
  const NtiResult r2 = NtiAnalyzer(cfg).Analyze(query, inputs);
  EXPECT_EQ(r2.exact_hits, 9u);
}

TEST(Pipeline, ViewOverloadMatchesCompatShim) {
  const NtiAnalyzer nti(StagedConfig());
  const std::string query = "SELECT * FROM t WHERE id = -1 OR 1=1";
  const std::vector<http::Input> inputs = {
      {http::InputKind::kGet, "id", "-1 OR 1=1"},
      {http::InputKind::kCookie, "s", "tok123"}};
  const auto critical = sql::CriticalTokens(sql::Lex(query), false);
  const NtiResult via_inputs = nti.AnalyzeCritical(query, critical, inputs);
  const NtiResult via_views =
      nti.AnalyzeCritical(query, critical, http::ViewsOf(inputs));
  EXPECT_EQ(via_inputs.attack_detected, via_views.attack_detected);
  ASSERT_EQ(via_inputs.markings.size(), via_views.markings.size());
  for (std::size_t i = 0; i < via_inputs.markings.size(); ++i) {
    EXPECT_EQ(via_inputs.markings[i].span.begin,
              via_views.markings[i].span.begin);
    EXPECT_EQ(via_inputs.markings[i].input_name,
              via_views.markings[i].input_name);
  }
}

}  // namespace
}  // namespace joza::nti
