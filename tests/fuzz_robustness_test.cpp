// Robustness sweeps: random and adversarial byte soup must never crash the
// lexer, parser, analyzers or engine — they fail closed or degrade to
// token-level analysis instead.
#include <gtest/gtest.h>

#include "core/joza.h"
#include "db/database.h"
#include "phpsrc/php_lexer.h"
#include "sqlparse/lexer.h"
#include "sqlparse/parser.h"
#include "sqlparse/structure.h"
#include "util/rng.h"

namespace joza {
namespace {

std::string RandomBytes(Rng& rng, std::size_t max_len) {
  std::string s;
  std::size_t len = rng.NextBelow(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return s;
}

// SQL-ish soup: random tokens glued together, likelier to reach deep
// parser paths than raw bytes.
std::string RandomSqlSoup(Rng& rng, std::size_t max_tokens) {
  static const char* kPieces[] = {
      "SELECT", "FROM",  "WHERE",  "UNION", "OR",    "AND",  "(",
      ")",      ",",     "'",      "\"",    "--",    "/*",   "*/",
      "1",      "id",    "=",      "<",     ">",     "*",    ";",
      "NULL",   "LIKE",  "IN",     "NOT",   "LIMIT", "BY",   "ORDER",
      "`t`",    "0x1F",  "?",      ":p",    "\\",    "#",    ".",
  };
  std::string s;
  std::size_t n = rng.NextBelow(max_tokens);
  for (std::size_t i = 0; i < n; ++i) {
    s += kPieces[rng.NextBelow(std::size(kPieces))];
    if (rng.NextBool(0.7)) s.push_back(' ');
  }
  return s;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, LexerTotalOnRandomBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string s = RandomBytes(rng, 200);
    auto tokens = sql::Lex(s);
    // Spans must be within bounds, non-overlapping and ordered.
    std::size_t prev_end = 0;
    for (const auto& t : tokens) {
      EXPECT_LE(t.span.begin, t.span.end);
      EXPECT_LE(t.span.end, s.size());
      EXPECT_GE(t.span.begin, prev_end);
      prev_end = t.span.end;
    }
  }
}

TEST_P(FuzzTest, ParserNeverCrashesOnSoup) {
  Rng rng(GetParam() * 3 + 1);
  for (int i = 0; i < 300; ++i) {
    std::string s = RandomSqlSoup(rng, 40);
    (void)sql::Parse(s);            // ok() or error, never UB
    (void)sql::StructureHashOf(s);  // same
    (void)sql::TokenSkeleton(s);
  }
}

TEST_P(FuzzTest, DatabaseRejectsGarbageGracefully) {
  Rng rng(GetParam() * 7 + 2);
  db::Database db;
  db.Execute("CREATE TABLE t (a INT, s TEXT)");
  db.Execute("INSERT INTO t VALUES (1, 'x')");
  for (int i = 0; i < 150; ++i) {
    (void)db.Execute(RandomSqlSoup(rng, 30));
  }
  // The engine survives and original data is intact.
  auto r = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->rows[0][0].as_int(), 1);
}

TEST_P(FuzzTest, JozaTotalOnAdversarialQueries) {
  Rng rng(GetParam() * 31 + 3);
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM t WHERE a = ");
  core::Joza joza(std::move(set));
  for (int i = 0; i < 150; ++i) {
    std::string q = RandomSqlSoup(rng, 30);
    std::vector<http::Input> inputs = {
        {http::InputKind::kGet, "x", RandomBytes(rng, 40)}};
    (void)joza.Check(q, inputs);  // must not crash or hang
  }
}

TEST_P(FuzzTest, PhpLexerTotalOnRandomBytes) {
  Rng rng(GetParam() * 131 + 5);
  for (int i = 0; i < 300; ++i) {
    (void)php::ExtractStringLiterals(RandomBytes(rng, 300));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 5, 8));

// Hand-picked adversarial inputs that exercised past bugs or likely
// corner cases.
TEST(FuzzRegression, NastyQueries) {
  const char* nasties[] = {
      "",
      " ",
      "'",
      "''",
      "'''",
      "\\",
      "/*",
      "*/",
      "/*/",
      "--",
      "#",
      "SELECT '",
      "SELECT /*",
      "SELECT 'a'' ",
      "0x",
      "1e",
      "1e+",
      ". . .",
      "(((((((((()))))))))",
      "SELECT 1 FROM t WHERE a = :",
      "?:?:?",
      "`unclosed",
      "SELECT \xff\xfe\x00\x01 FROM t",
  };
  php::FragmentSet set;
  set.AddRaw("SELECT 1");
  core::Joza joza(std::move(set));
  for (const char* q : nasties) {
    (void)sql::Lex(q);
    (void)sql::Parse(q);
    (void)joza.Check(q, {});
  }
  SUCCEED();
}

}  // namespace
}  // namespace joza
