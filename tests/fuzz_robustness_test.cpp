// Robustness sweeps: random and adversarial byte soup must never crash the
// lexer, parser, analyzers or engine — they fail closed or degrade to
// token-level analysis instead.
#include <gtest/gtest.h>

#include <limits>

#include "core/joza.h"
#include "costmodel/codec.h"
#include "costmodel/costmodel.h"
#include "db/database.h"
#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "phpsrc/php_lexer.h"
#include "resilience/snapshot.h"
#include "sqlparse/lexer.h"
#include "sqlparse/parser.h"
#include "sqlparse/structure.h"
#include "util/hash.h"
#include "util/rng.h"

namespace joza {
namespace {

std::string RandomBytes(Rng& rng, std::size_t max_len) {
  std::string s;
  std::size_t len = rng.NextBelow(max_len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return s;
}

// SQL-ish soup: random tokens glued together, likelier to reach deep
// parser paths than raw bytes.
std::string RandomSqlSoup(Rng& rng, std::size_t max_tokens) {
  static const char* kPieces[] = {
      "SELECT", "FROM",  "WHERE",  "UNION", "OR",    "AND",  "(",
      ")",      ",",     "'",      "\"",    "--",    "/*",   "*/",
      "1",      "id",    "=",      "<",     ">",     "*",    ";",
      "NULL",   "LIKE",  "IN",     "NOT",   "LIMIT", "BY",   "ORDER",
      "`t`",    "0x1F",  "?",      ":p",    "\\",    "#",    ".",
  };
  std::string s;
  std::size_t n = rng.NextBelow(max_tokens);
  for (std::size_t i = 0; i < n; ++i) {
    s += kPieces[rng.NextBelow(std::size(kPieces))];
    if (rng.NextBool(0.7)) s.push_back(' ');
  }
  return s;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, LexerTotalOnRandomBytes) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    std::string s = RandomBytes(rng, 200);
    auto tokens = sql::Lex(s);
    // Spans must be within bounds, non-overlapping and ordered.
    std::size_t prev_end = 0;
    for (const auto& t : tokens) {
      EXPECT_LE(t.span.begin, t.span.end);
      EXPECT_LE(t.span.end, s.size());
      EXPECT_GE(t.span.begin, prev_end);
      prev_end = t.span.end;
    }
  }
}

TEST_P(FuzzTest, ParserNeverCrashesOnSoup) {
  Rng rng(GetParam() * 3 + 1);
  for (int i = 0; i < 300; ++i) {
    std::string s = RandomSqlSoup(rng, 40);
    (void)sql::Parse(s);            // ok() or error, never UB
    (void)sql::StructureHashOf(s);  // same
    (void)sql::TokenSkeleton(s);
  }
}

TEST_P(FuzzTest, DatabaseRejectsGarbageGracefully) {
  Rng rng(GetParam() * 7 + 2);
  db::Database db;
  db.Execute("CREATE TABLE t (a INT, s TEXT)");
  db.Execute("INSERT INTO t VALUES (1, 'x')");
  for (int i = 0; i < 150; ++i) {
    (void)db.Execute(RandomSqlSoup(rng, 30));
  }
  // The engine survives and original data is intact.
  auto r = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->rows[0][0].as_int(), 1);
}

TEST_P(FuzzTest, JozaTotalOnAdversarialQueries) {
  Rng rng(GetParam() * 31 + 3);
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM t WHERE a = ");
  core::Joza joza(std::move(set));
  for (int i = 0; i < 150; ++i) {
    std::string q = RandomSqlSoup(rng, 30);
    std::vector<http::Input> inputs = {
        {http::InputKind::kGet, "x", RandomBytes(rng, 40)}};
    (void)joza.Check(q, inputs);  // must not crash or hang
  }
}

TEST_P(FuzzTest, PhpLexerTotalOnRandomBytes) {
  Rng rng(GetParam() * 131 + 5);
  for (int i = 0; i < 300; ++i) {
    (void)php::ExtractStringLiterals(RandomBytes(rng, 300));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 5, 8));

// Hand-picked adversarial inputs that exercised past bugs or likely
// corner cases.
TEST(FuzzRegression, NastyQueries) {
  const char* nasties[] = {
      "",
      " ",
      "'",
      "''",
      "'''",
      "\\",
      "/*",
      "*/",
      "/*/",
      "--",
      "#",
      "SELECT '",
      "SELECT /*",
      "SELECT 'a'' ",
      "0x",
      "1e",
      "1e+",
      ". . .",
      "(((((((((()))))))))",
      "SELECT 1 FROM t WHERE a = :",
      "?:?:?",
      "`unclosed",
      "SELECT \xff\xfe\x00\x01 FROM t",
  };
  php::FragmentSet set;
  set.AddRaw("SELECT 1");
  core::Joza joza(std::move(set));
  for (const char* q : nasties) {
    (void)sql::Lex(q);
    (void)sql::Parse(q);
    (void)joza.Check(q, {});
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Crash-durable snapshot loader: any mangled image must load fail-closed
// (an error Status, never a crash, never a partially-trusted vocabulary).
// ---------------------------------------------------------------------------

std::string ValidSnapshotImage() {
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM posts WHERE id=", "app/post.php", 12);
  set.AddRaw("INSERT INTO comments VALUES (", "app/comment.php", 40);
  set.AddRaw("SELECT name FROM users WHERE uid=", "plugins/events.php", 7);
  return resilience::EncodeRulesetSnapshot(set, 99);
}

// Re-stamps the trailing checksum so deliberate field corruption tests the
// decoder's own guards rather than tripping the checksum first.
void RestampChecksum(std::string& image) {
  const std::string_view body(image.data(), image.size() - 8);
  const std::uint64_t sum = Fnv1a64(body);
  for (int i = 0; i < 8; ++i) {
    image[image.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
}

TEST(SnapshotFuzz, ZeroLengthAndTinyImagesFailClosed) {
  EXPECT_FALSE(resilience::ParseRulesetSnapshot("").ok());
  const std::string valid = ValidSnapshotImage();
  for (std::size_t len = 1; len < 32 && len < valid.size(); ++len) {
    auto parsed = resilience::ParseRulesetSnapshot(valid.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "tiny image of " << len << " bytes";
  }
}

TEST(SnapshotFuzz, EveryTruncationFailsClosed) {
  const std::string valid = ValidSnapshotImage();
  ASSERT_TRUE(resilience::ParseRulesetSnapshot(valid).ok());
  for (std::size_t len = 0; len < valid.size(); ++len) {
    auto parsed = resilience::ParseRulesetSnapshot(valid.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "truncated to " << len << " of "
                              << valid.size() << " bytes";
  }
}

TEST(SnapshotFuzz, EverySingleBitFlipFailsClosed) {
  const std::string valid = ValidSnapshotImage();
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = valid;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      auto parsed = resilience::ParseRulesetSnapshot(flipped);
      EXPECT_FALSE(parsed.ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(SnapshotFuzz, FormatVersionSkewFailsClosedEvenWithValidChecksum) {
  // A snapshot written by a future/other format revision: same layout, a
  // different magic tag, checksum recomputed so only the tag distinguishes
  // it. The loader must refuse instead of guessing at the layout.
  for (const char skewed_tag : {'0', '2', '9', 'X'}) {
    std::string image = ValidSnapshotImage();
    image[7] = skewed_tag;  // "JZSNAP01" -> "JZSNAP0?"
    RestampChecksum(image);
    auto parsed = resilience::ParseRulesetSnapshot(image);
    EXPECT_FALSE(parsed.ok()) << "format tag '" << skewed_tag << "'";
  }
}

TEST(SnapshotFuzz, ImplausibleCountWithValidChecksumFailsClosed) {
  // Maliciously constructed image: huge fragment count, checksum valid.
  // The count-plausibility guard must refuse before the decode loop trusts
  // it for allocation sizing.
  std::string image = ValidSnapshotImage();
  for (int i = 0; i < 8; ++i) {
    image[16 + static_cast<std::size_t>(i)] = static_cast<char>(0xff);
  }
  RestampChecksum(image);
  auto parsed = resilience::ParseRulesetSnapshot(image);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(SnapshotFuzz, TrailingGarbageWithValidChecksumFailsClosed) {
  std::string image = ValidSnapshotImage();
  image.insert(image.size() - 8, "extra bytes after the last fragment");
  RestampChecksum(image);
  EXPECT_FALSE(resilience::ParseRulesetSnapshot(image).ok());
}

TEST_P(FuzzTest, SnapshotLoaderTotalOnRandomBytes) {
  Rng rng(GetParam() * 257 + 11);
  for (int i = 0; i < 500; ++i) {
    std::string image = RandomBytes(rng, 512);
    // Random soup virtually never carries a valid checksum; the invariant
    // under test is totality — no crash, no hang, no fail-open — so a
    // freak success only has to be internally consistent.
    auto parsed = resilience::ParseRulesetSnapshot(image);
    if (parsed.ok()) {
      EXPECT_LE(parsed->fragments.size(), image.size());
    }
  }
}

TEST_P(FuzzTest, SnapshotLoaderTotalOnMangledValidImages) {
  Rng rng(GetParam() * 509 + 13);
  const std::string valid = ValidSnapshotImage();
  for (int i = 0; i < 500; ++i) {
    std::string image = valid;
    // A burst of random edits: overwrites, truncation, growth.
    const std::size_t edits = 1 + rng.NextBelow(8);
    for (std::size_t e = 0; e < edits; ++e) {
      switch (rng.NextBelow(3)) {
        case 0:
          if (!image.empty()) {
            image[rng.NextBelow(image.size())] =
                static_cast<char>(rng.NextBelow(256));
          }
          break;
        case 1:
          image.resize(rng.NextBelow(image.size() + 1));
          break;
        default:
          image.push_back(static_cast<char>(rng.NextBelow(256)));
          break;
      }
    }
    (void)resilience::ParseRulesetSnapshot(image);  // must not crash
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// JZCM01 cost-model loader: same fail-closed contract as the snapshot
// codec. Any mangled artifact must produce an error Status and bump the
// parse-failure counter — never a crash, never a partially-decoded model
// steering matcher decisions.
// ---------------------------------------------------------------------------

costmodel::CostModel ValidCostModel() {
  costmodel::CostModel m;
  for (std::size_t i = 0; i < costmodel::kStageCount; ++i) {
    m.stages[i].base_ns = 25.0 + static_cast<double>(i);
    m.stages[i].per_byte_ns = 0.25 * static_cast<double>(i + 1);
  }
  m.calibration_samples = 7;
  return m;
}

TEST(CostModelFuzz, EveryTruncationFailsClosedWithCounter) {
  const std::string valid = costmodel::EncodeCostModel(ValidCostModel());
  ASSERT_TRUE(costmodel::ParseCostModel(valid).ok());
  costmodel::ResetCodecStats();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(costmodel::ParseCostModel(valid.substr(0, len)).ok())
        << "truncated to " << len << " of " << valid.size() << " bytes";
  }
  EXPECT_EQ(costmodel::GetCodecStats().parse_failures, valid.size());
}

TEST(CostModelFuzz, EverySingleBitFlipFailsClosed) {
  const std::string valid = costmodel::EncodeCostModel(ValidCostModel());
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = valid;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      EXPECT_FALSE(costmodel::ParseCostModel(flipped).ok())
          << "bit " << bit << " of byte " << byte << " flipped undetected";
    }
  }
}

TEST(CostModelFuzz, ImplausibleCoefficientsWithValidChecksumFailClosed) {
  // A correctly-checksummed artifact whose producer wrote garbage: NaN,
  // infinity, negative and absurd coefficients must all be refused by the
  // plausibility gate, with the fail-closed counter bumped.
  const double bad[] = {std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity(), -4.0,
                        costmodel::kMaxPlausibleNs * 10};
  costmodel::ResetCodecStats();
  std::uint64_t expected_failures = 0;
  for (const double coeff : bad) {
    costmodel::CostModel m = ValidCostModel();
    m.stages[3].per_byte_ns = coeff;
    // Encode re-checksums, so only the plausibility guard can refuse.
    auto parsed = costmodel::ParseCostModel(costmodel::EncodeCostModel(m));
    EXPECT_FALSE(parsed.ok()) << "coefficient " << coeff;
    ++expected_failures;
  }
  EXPECT_EQ(costmodel::GetCodecStats().parse_failures, expected_failures);
}

TEST_P(FuzzTest, CostModelLoaderTotalOnRandomBytes) {
  Rng rng(GetParam() * 601 + 17);
  for (int i = 0; i < 500; ++i) {
    (void)costmodel::ParseCostModel(RandomBytes(rng, 300));  // never crash
  }
  SUCCEED();
}

TEST_P(FuzzTest, CostModelLoaderTotalOnMangledValidImages) {
  Rng rng(GetParam() * 811 + 19);
  const std::string valid = costmodel::EncodeCostModel(ValidCostModel());
  for (int i = 0; i < 500; ++i) {
    std::string image = valid;
    const std::size_t edits = 1 + rng.NextBelow(8);
    for (std::size_t e = 0; e < edits; ++e) {
      switch (rng.NextBelow(3)) {
        case 0:
          if (!image.empty()) {
            image[rng.NextBelow(image.size())] =
                static_cast<char>(rng.NextBelow(256));
          }
          break;
        case 1:
          image.resize(rng.NextBelow(image.size() + 1));
          break;
        default:
          image.push_back(static_cast<char>(rng.NextBelow(256)));
          break;
      }
    }
    (void)costmodel::ParseCostModel(image);  // must not crash
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Adversarially wrong cost models may only move cycles, never verdicts:
// staged matching under an all-zero or all-huge model must stay
// verdict-identical to the reference tier.
// ---------------------------------------------------------------------------

TEST_P(FuzzTest, AdversarialCostModelsNeverChangeVerdicts) {
  // All-zero: every stage claims to be free (the automaton always "wins").
  auto zero = std::make_shared<const costmodel::CostModel>();
  // All-huge-build: the automaton never amortizes, find always "wins".
  costmodel::CostModel huge_build;
  for (std::size_t i = 0; i < costmodel::kStageCount; ++i) {
    huge_build.stages[i] = {1.0, 0.001};
  }
  huge_build.curve(costmodel::Stage::kAcBuild) = {
      costmodel::kMaxPlausibleNs, costmodel::kMaxPlausibleNs};
  auto huge = std::make_shared<const costmodel::CostModel>(huge_build);

  nti::NtiConfig reference;
  reference.tier = nti::MatchTier::kReference;
  nti::NtiConfig staged_zero;
  staged_zero.cost_model = zero;
  nti::NtiConfig staged_huge;
  staged_huge.cost_model = huge;
  const nti::NtiAnalyzer ref(reference);
  const nti::NtiAnalyzer under_zero(staged_zero);
  const nti::NtiAnalyzer under_huge(staged_huge);

  Rng rng(GetParam() * 977 + 23);
  for (int i = 0; i < 120; ++i) {
    // Mixed corpus: SQL soup queries, inputs that sometimes occur verbatim
    // in the query (exercising the exact stage both ways).
    std::string query = RandomSqlSoup(rng, 25);
    std::vector<http::Input> inputs;
    const std::size_t n = 1 + rng.NextBelow(8);
    for (std::size_t k = 0; k < n; ++k) {
      std::string value = rng.NextBool(0.5) ? RandomBytes(rng, 24)
                                            : RandomSqlSoup(rng, 4);
      if (rng.NextBool(0.5) && !value.empty()) query += " " + value;
      inputs.push_back({http::InputKind::kGet, "p" + std::to_string(k),
                        std::move(value)});
    }
    const nti::NtiResult want = ref.Analyze(query, inputs);
    for (const nti::NtiAnalyzer* analyzer : {&under_zero, &under_huge}) {
      const nti::NtiResult got = analyzer->Analyze(query, inputs);
      ASSERT_EQ(got.attack_detected, want.attack_detected)
          << "query: " << query;
      ASSERT_EQ(got.tainted_critical_tokens.size(),
                want.tainted_critical_tokens.size());
      ASSERT_EQ(got.markings.size(), want.markings.size());
      for (std::size_t m = 0; m < want.markings.size(); ++m) {
        EXPECT_EQ(got.markings[m].span.begin, want.markings[m].span.begin);
        EXPECT_EQ(got.markings[m].span.end, want.markings[m].span.end);
        EXPECT_EQ(got.markings[m].input_name, want.markings[m].input_name);
      }
      // Every decision under these analyzers came from a (bad) model.
      if (got.planner_exact_automaton + got.planner_exact_find > 0) {
        EXPECT_GT(got.planner_calibrated, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace joza
