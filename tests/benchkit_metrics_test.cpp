#include "benchkit/metrics.h"

#include <vector>

#include "gtest/gtest.h"

namespace joza::benchkit {
namespace {

TEST(Percentile, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Percentile({}, 0.99), 0.0);
}

TEST(Percentile, SingleSampleIsThatSample) {
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(Percentile({7.5}, 1.0), 7.5);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // rank = p * (n - 1); p50 of four evenly spaced samples sits mid-gap.
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0.50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 1.0), 4.0);
}

TEST(Percentile, SortsItsInput) {
  EXPECT_DOUBLE_EQ(Percentile({4, 1, 3, 2}, 0.50), 2.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3}, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3}, 1.5), 3.0);
}

TEST(Percentile, TailOfLargeSet) {
  std::vector<double> ms;
  for (int i = 1; i <= 100; ++i) ms.push_back(static_cast<double>(i));
  // rank = 0.99 * 99 = 98.01 → between 99 and 100.
  EXPECT_NEAR(Percentile(ms, 0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(Percentile(ms, 0.50), 50.5);
}

TEST(LatencyRecorder, SummaryOverSteadySamples) {
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.Record(static_cast<double>(i));
  const LatencySummary s = rec.Summary();
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(LatencyRecorder, EndWarmupDropsEarlierSamples) {
  LatencyRecorder rec;
  rec.Record(1000.0);  // cold-start outlier
  rec.EndWarmup();
  rec.Record(2.0);
  rec.Record(4.0);
  const LatencySummary s = rec.Summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(LatencyRecorder, MergeCombinesSteadyState) {
  LatencyRecorder a;
  a.Record(1.0);
  a.Record(2.0);
  LatencyRecorder b;
  b.Record(100.0);
  b.EndWarmup();
  b.Record(3.0);
  a.Merge(b);  // only b's steady-state sample crosses over
  const LatencySummary s = a.Summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(LatencyRecorder, QpsUsesSteadyCount) {
  LatencyRecorder rec;
  rec.Record(1.0);
  rec.EndWarmup();
  for (int i = 0; i < 50; ++i) rec.Record(1.0);
  EXPECT_DOUBLE_EQ(rec.Qps(2.0), 25.0);
  EXPECT_EQ(rec.Qps(0.0), 0.0);
}

TEST(Formatting, NumAndPct) {
  EXPECT_EQ(Num(1.23456, 2), "1.23");
  EXPECT_EQ(Pct(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace joza::benchkit
