// Differential testing of NTI's optimized matcher against a brute-force
// reference on small random instances: the optimizations (exact fast path,
// bounded DP with pruning) must never change the verdict.
#include <gtest/gtest.h>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "match/levenshtein.h"
#include "nti/nti.h"
#include "sqlparse/lexer.h"
#include "util/codec.h"
#include "util/rng.h"

namespace joza::nti {
namespace {

// Reference: try every substring, keep the best ratio.
struct RefMatch {
  double ratio = 1.0;
  ByteSpan span;
};

RefMatch BruteForceBest(std::string_view query, std::string_view input) {
  RefMatch best;
  std::size_t best_dist = query.size() + input.size();
  for (std::size_t b = 0; b <= query.size(); ++b) {
    for (std::size_t e = b; e <= query.size(); ++e) {
      std::size_t d = match::LevenshteinTwoRow(query.substr(b, e - b), input);
      if (d < best_dist || (d == best_dist && e - b > best.span.length())) {
        best_dist = d;
        best.span = {b, e};
      }
    }
  }
  if (best.span.length() > 0) {
    best.ratio = static_cast<double>(best_dist) /
                 static_cast<double>(best.span.length());
  }
  return best;
}

// Reference NTI verdict built directly from the definition.
bool ReferenceVerdict(std::string_view query,
                      const std::vector<http::Input>& inputs,
                      const NtiConfig& cfg) {
  const auto tokens = sql::Lex(query);
  for (const http::Input& input : inputs) {
    if (input.value.size() < cfg.min_input_length) continue;
    if (static_cast<double>(input.value.size()) >
        static_cast<double>(query.size()) * (1.0 + cfg.threshold)) {
      continue;
    }
    RefMatch m = BruteForceBest(query, input.value);
    if (m.ratio > cfg.threshold) continue;
    for (const auto& t : tokens) {
      if (t.IsCritical() && m.span.contains(t.span)) return true;
    }
  }
  return false;
}

class NtiDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NtiDifferentialTest, OptimizedMatchesBruteForce) {
  Rng rng(GetParam());
  NtiConfig cfg;  // defaults: fast path + bounded DP on
  NtiAnalyzer optimized(cfg);

  static const char* kQueryTemplates[] = {
      "SELECT a FROM t WHERE x = ",
      "SELECT a FROM t WHERE s = 'v' AND x = ",
      "UPDATE t SET a = 1 WHERE k = ",
  };
  static const char* kPayloads[] = {
      "1 OR 1=1", "9", "abc", "1 UNION SELECT x", "zz' OR 'a'='a",
  };

  int verdict_diffs = 0;
  for (int i = 0; i < 120; ++i) {
    std::string payload;
    if (rng.NextBool(0.5)) {
      payload = kPayloads[rng.NextBelow(std::size(kPayloads))];
      // Random light mutation: insert a char, as a transformation would.
      if (rng.NextBool(0.5) && !payload.empty()) {
        payload.insert(rng.NextBelow(payload.size()), 1,
                       static_cast<char>('a' + rng.NextBelow(26)));
      }
    } else {
      payload = rng.NextToken(1 + rng.NextBelow(10));
    }
    std::string query =
        std::string(kQueryTemplates[rng.NextBelow(std::size(kQueryTemplates))]);
    // The query sees a (possibly different) variant of the payload.
    std::string in_query = payload;
    if (rng.NextBool(0.3) && !in_query.empty()) {
      in_query.erase(rng.NextBelow(in_query.size()), 1);
    }
    query += in_query;

    std::vector<http::Input> inputs = {
        {http::InputKind::kGet, "p", payload}};
    const bool opt = optimized.Analyze(query, inputs).attack_detected;
    const bool ref = ReferenceVerdict(query, inputs, cfg);
    if (opt != ref) ++verdict_diffs;
    EXPECT_EQ(opt, ref) << "query: " << query << "  input: " << payload;
  }
  EXPECT_EQ(verdict_diffs, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtiDifferentialTest,
                         ::testing::Values(10, 20, 30, 40));

// --- Staged pipeline vs reference tier: full-result equality --------------
//
// The staged engine (multi-pattern exact scan, q-gram seeding, Myers reject
// kernel, bounded verification) claims verdict-identity with the reference
// Sellers tier: same attack bit, same marking spans, same tainted critical
// tokens. These tests enforce it over randomized corpora (plain ASCII and
// URL-encoded payloads, including the >64-byte and non-ASCII inputs that
// exercise the kernel fallback) and over the full attack catalog, at
// several threshold values.

bool SameOutcome(const NtiResult& a, const NtiResult& b) {
  if (a.attack_detected != b.attack_detected) return false;
  if (a.markings.size() != b.markings.size()) return false;
  for (std::size_t i = 0; i < a.markings.size(); ++i) {
    const TaintMarking& ma = a.markings[i];
    const TaintMarking& mb = b.markings[i];
    if (ma.span.begin != mb.span.begin || ma.span.end != mb.span.end ||
        ma.distance != mb.distance || ma.input_name != mb.input_name ||
        ma.input_kind != mb.input_kind || ma.ratio != mb.ratio) {
      return false;
    }
  }
  if (a.tainted_critical_tokens.size() != b.tainted_critical_tokens.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tainted_critical_tokens.size(); ++i) {
    if (a.tainted_critical_tokens[i].span.begin !=
            b.tainted_critical_tokens[i].span.begin ||
        a.tainted_critical_tokens[i].span.end !=
            b.tainted_critical_tokens[i].span.end) {
      return false;
    }
  }
  return true;
}

void ExpectTierParity(std::string_view query,
                      const std::vector<http::Input>& inputs,
                      double threshold) {
  NtiConfig cfg;
  cfg.threshold = threshold;
  cfg.tier = MatchTier::kReference;
  const NtiResult ref = NtiAnalyzer(cfg).Analyze(query, inputs);
  cfg.tier = MatchTier::kBounded;
  const NtiResult bounded = NtiAnalyzer(cfg).Analyze(query, inputs);
  cfg.tier = MatchTier::kStaged;
  const NtiResult staged = NtiAnalyzer(cfg).Analyze(query, inputs);
  EXPECT_TRUE(SameOutcome(staged, ref))
      << "staged diverged at t=" << threshold << " query: " << query;
  EXPECT_TRUE(SameOutcome(bounded, ref))
      << "bounded diverged at t=" << threshold << " query: " << query;
}

constexpr double kThresholds[] = {0.0, 0.10, 0.20, 0.40};

class StagedFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StagedFuzzTest, RandomCorporaAllTiersAgree) {
  Rng rng(GetParam());
  static const char* kTemplates[] = {
      "SELECT a FROM t WHERE x = ",
      "SELECT a FROM t WHERE s = 'v' AND x = ",
      "UPDATE t SET a = 1 WHERE k = ",
      "SELECT login, pass FROM wp_users WHERE id = ",
  };
  static const char* kPayloads[] = {
      "1 OR 1=1",    "9",       "abc", "1 UNION SELECT x",
      "zz' OR 'a'='a", "-1 or 1=1 union select login, pass from wp_users",
  };

  for (int i = 0; i < 150; ++i) {
    std::string payload;
    if (rng.NextBool(0.5)) {
      payload = kPayloads[rng.NextBelow(std::size(kPayloads))];
      if (rng.NextBool(0.5) && !payload.empty()) {
        payload.insert(rng.NextBelow(payload.size()), 1,
                       static_cast<char>('a' + rng.NextBelow(26)));
      }
    } else {
      payload = rng.NextToken(1 + rng.NextBelow(14));
    }
    // Kernel-fallback shapes: oversized (>64 byte) and non-ASCII inputs.
    if (rng.NextBool(0.1)) payload.append(70, 'q');
    if (rng.NextBool(0.1) && !payload.empty()) {
      payload[rng.NextBelow(payload.size())] = static_cast<char>(0xE2);
    }

    // The query sees a (possibly different) variant of the payload; the
    // stored input is sometimes still transport-encoded (an application
    // that decodes twice), driving edit distance through %-escapes.
    std::string in_query = payload;
    if (rng.NextBool(0.3) && !in_query.empty()) {
      in_query.erase(rng.NextBelow(in_query.size()), 1);
    }
    std::string stored = payload;
    if (rng.NextBool(0.3)) stored = UrlEncode(payload);

    const std::string query =
        std::string(kTemplates[rng.NextBelow(std::size(kTemplates))]) +
        in_query;
    const std::vector<http::Input> inputs = {
        {http::InputKind::kGet, "p", stored},
        {http::InputKind::kCookie, "session", rng.NextToken(12)},
        {http::InputKind::kHeader, "x-trace", rng.NextToken(6)},
    };
    ExpectTierParity(query, inputs, kThresholds[i % std::size(kThresholds)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StagedFuzzTest,
                         ::testing::Values(1000, 2000, 3000));

TEST(StagedCatalogTest, AttackCatalogAllTiersAgree) {
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    const attack::Exploit orig = attack::OriginalExploit(p);
    std::vector<std::string> payloads = {orig.payload};
    const attack::NtiMutation m =
        attack::MutateForNtiEvasion(p, orig, NtiConfig{});
    if (m.possible) payloads.push_back(m.exploit.payload);
    for (const std::string& payload : payloads) {
      const std::string query = attack::QueryFor(p, payload);
      const std::vector<http::Input> inputs = attack::InputsFor(p, payload);
      for (double threshold : kThresholds) {
        ExpectTierParity(query, inputs, threshold);
      }
    }
  }
}

}  // namespace
}  // namespace joza::nti
