// Differential testing of NTI's optimized matcher against a brute-force
// reference on small random instances: the optimizations (exact fast path,
// bounded DP with pruning) must never change the verdict.
#include <gtest/gtest.h>

#include "match/levenshtein.h"
#include "nti/nti.h"
#include "sqlparse/lexer.h"
#include "util/rng.h"

namespace joza::nti {
namespace {

// Reference: try every substring, keep the best ratio.
struct RefMatch {
  double ratio = 1.0;
  ByteSpan span;
};

RefMatch BruteForceBest(std::string_view query, std::string_view input) {
  RefMatch best;
  std::size_t best_dist = query.size() + input.size();
  for (std::size_t b = 0; b <= query.size(); ++b) {
    for (std::size_t e = b; e <= query.size(); ++e) {
      std::size_t d = match::LevenshteinTwoRow(query.substr(b, e - b), input);
      if (d < best_dist || (d == best_dist && e - b > best.span.length())) {
        best_dist = d;
        best.span = {b, e};
      }
    }
  }
  if (best.span.length() > 0) {
    best.ratio = static_cast<double>(best_dist) /
                 static_cast<double>(best.span.length());
  }
  return best;
}

// Reference NTI verdict built directly from the definition.
bool ReferenceVerdict(std::string_view query,
                      const std::vector<http::Input>& inputs,
                      const NtiConfig& cfg) {
  const auto tokens = sql::Lex(query);
  for (const http::Input& input : inputs) {
    if (input.value.size() < cfg.min_input_length) continue;
    if (static_cast<double>(input.value.size()) >
        static_cast<double>(query.size()) * (1.0 + cfg.threshold)) {
      continue;
    }
    RefMatch m = BruteForceBest(query, input.value);
    if (m.ratio > cfg.threshold) continue;
    for (const auto& t : tokens) {
      if (t.IsCritical() && m.span.contains(t.span)) return true;
    }
  }
  return false;
}

class NtiDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NtiDifferentialTest, OptimizedMatchesBruteForce) {
  Rng rng(GetParam());
  NtiConfig cfg;  // defaults: fast path + bounded DP on
  NtiAnalyzer optimized(cfg);

  static const char* kQueryTemplates[] = {
      "SELECT a FROM t WHERE x = ",
      "SELECT a FROM t WHERE s = 'v' AND x = ",
      "UPDATE t SET a = 1 WHERE k = ",
  };
  static const char* kPayloads[] = {
      "1 OR 1=1", "9", "abc", "1 UNION SELECT x", "zz' OR 'a'='a",
  };

  int verdict_diffs = 0;
  for (int i = 0; i < 120; ++i) {
    std::string payload;
    if (rng.NextBool(0.5)) {
      payload = kPayloads[rng.NextBelow(std::size(kPayloads))];
      // Random light mutation: insert a char, as a transformation would.
      if (rng.NextBool(0.5) && !payload.empty()) {
        payload.insert(rng.NextBelow(payload.size()), 1,
                       static_cast<char>('a' + rng.NextBelow(26)));
      }
    } else {
      payload = rng.NextToken(1 + rng.NextBelow(10));
    }
    std::string query =
        std::string(kQueryTemplates[rng.NextBelow(std::size(kQueryTemplates))]);
    // The query sees a (possibly different) variant of the payload.
    std::string in_query = payload;
    if (rng.NextBool(0.3) && !in_query.empty()) {
      in_query.erase(rng.NextBelow(in_query.size()), 1);
    }
    query += in_query;

    std::vector<http::Input> inputs = {
        {http::InputKind::kGet, "p", payload}};
    const bool opt = optimized.Analyze(query, inputs).attack_detected;
    const bool ref = ReferenceVerdict(query, inputs, cfg);
    if (opt != ref) ++verdict_diffs;
    EXPECT_EQ(opt, ref) << "query: " << query << "  input: " << payload;
  }
  EXPECT_EQ(verdict_diffs, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtiDifferentialTest,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace joza::nti
