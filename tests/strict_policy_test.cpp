// Section II: the threat-model dial. The default pragmatic policy permits
// user-supplied field/table names (advanced-search apps depend on it); the
// strict Ray-Ligatti-style policy treats identifiers as critical, catching
// column-reference smuggling at the cost of breaking those apps.
#include <gtest/gtest.h>

#include "nti/nti.h"
#include "phpsrc/fragments.h"
#include "pti/pti.h"

namespace joza {
namespace {

using http::Input;
using http::InputKind;

Input Get(std::string name, std::string value) {
  return Input{InputKind::kGet, std::move(name), std::move(value)};
}

php::FragmentSet SearchAppFragments() {
  php::FragmentSet set;
  set.AddRaw("SELECT id FROM wp_posts ORDER BY ");
  set.AddRaw(" DESC LIMIT 10");
  return set;
}

TEST(StrictPolicy, PragmaticNtiPermitsFieldNames) {
  // An advanced-search app sorts by a user-chosen column.
  nti::NtiAnalyzer nti;  // default: pragmatic
  auto r = nti.Analyze("SELECT id FROM wp_posts ORDER BY views DESC LIMIT 10",
                       {Get("sort", "views")});
  EXPECT_FALSE(r.attack_detected);
}

TEST(StrictPolicy, StrictNtiFlagsFieldNames) {
  nti::NtiConfig cfg;
  cfg.strict_tokens = true;
  nti::NtiAnalyzer nti(cfg);
  auto r = nti.Analyze("SELECT id FROM wp_posts ORDER BY views DESC LIMIT 10",
                       {Get("sort", "views")});
  EXPECT_TRUE(r.attack_detected)
      << "strict policy: the user-controlled identifier is an attack";
}

TEST(StrictPolicy, PragmaticPtiPermitsFieldNames) {
  pti::PtiAnalyzer pti(SearchAppFragments());
  auto r = pti.Analyze("SELECT id FROM wp_posts ORDER BY views DESC LIMIT 10");
  EXPECT_FALSE(r.attack_detected);
}

TEST(StrictPolicy, StrictPtiFlagsUnvettedIdentifiers) {
  pti::PtiConfig cfg;
  cfg.strict_tokens = true;
  pti::PtiAnalyzer pti(SearchAppFragments(), cfg);
  auto r = pti.Analyze("SELECT id FROM wp_posts ORDER BY views DESC LIMIT 10");
  EXPECT_TRUE(r.attack_detected);
  bool ident_flagged = false;
  for (const auto& t : r.untrusted_critical_tokens) {
    if (t.kind == sql::TokenKind::kIdentifier && t.text == "views") {
      ident_flagged = true;
    }
  }
  EXPECT_TRUE(ident_flagged);
}

TEST(StrictPolicy, StrictPtiStillPassesFullyProgramBuiltQueries) {
  // A query assembled entirely from fragments is fine even in strict mode.
  php::FragmentSet set;
  set.AddRaw("SELECT id FROM wp_posts ORDER BY views DESC LIMIT 10");
  pti::PtiConfig cfg;
  cfg.strict_tokens = true;
  pti::PtiAnalyzer pti(std::move(set), cfg);
  auto r = pti.Analyze("SELECT id FROM wp_posts ORDER BY views DESC LIMIT 10");
  EXPECT_FALSE(r.attack_detected);
}

TEST(StrictPolicy, StrictCatchesColumnSmuggling) {
  // The attack class the strict policy exists for: steering a query to a
  // sensitive column without injecting any keyword.
  nti::NtiConfig cfg;
  cfg.strict_tokens = true;
  auto detect = [&cfg](const char* col) {
    std::string q = std::string("SELECT ") + col + " FROM wp_users WHERE id = 1";
    return nti::NtiAnalyzer(cfg)
        .Analyze(q, {Get("field", col)})
        .attack_detected;
  };
  EXPECT_TRUE(detect("pass"));
  // Pragmatic mode misses it by design.
  EXPECT_FALSE(nti::NtiAnalyzer()
                   .Analyze("SELECT pass FROM wp_users WHERE id = 1",
                            {Get("field", "pass")})
                   .attack_detected);
}

}  // namespace
}  // namespace joza
