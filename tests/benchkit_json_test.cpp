#include "benchkit/json.h"

#include <cstdio>
#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace joza::benchkit {
namespace {

TEST(JsonDump, ScalarsAndIntegerFormatting) {
  EXPECT_EQ(Json().Dump(), "null\n");
  EXPECT_EQ(Json(true).Dump(), "true\n");
  // Integer-valued numbers print without a fraction (diff-friendly
  // baselines); fractional values keep their digits.
  EXPECT_EQ(Json(3.0).Dump(), "3\n");
  EXPECT_EQ(Json(-42).Dump(), "-42\n");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"\n");
}

TEST(JsonDump, EscapesStrings) {
  const std::string dumped = Json(std::string("a\"b\\c\n\tz")).Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\tz\"\n");
}

TEST(JsonDump, ObjectPreservesInsertionOrder) {
  Json obj{JsonObject{}};
  obj.Set("zeta", Json(1));
  obj.Set("alpha", Json(2));
  obj.Set("mid", Json(JsonArray{Json(1), Json(2.5)}));
  const std::string text = obj.Dump();
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mid"));
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null\n");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null\n");
}

TEST(JsonParse, RoundTripsNestedDocument) {
  Json root{JsonObject{}};
  root.Set("schema_version", Json(1));
  root.Set("name", Json("smoke"));
  root.Set("ok", Json(true));
  root.Set("none", Json());
  root.Set("values", Json(JsonArray{Json(1), Json(2.25), Json("three")}));
  Json inner{JsonObject{}};
  inner.Set("qps", Json(1234.5));
  root.Set("metrics", std::move(inner));

  const std::string text = root.Dump();
  StatusOr<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Re-dumping the parse yields the identical document.
  EXPECT_EQ(parsed.value().Dump(), text);

  const Json* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const Json* qps = metrics->Find("qps");
  ASSERT_NE(qps, nullptr);
  EXPECT_DOUBLE_EQ(qps->AsNumber(), 1234.5);
}

TEST(JsonParse, AcceptsEscapesAndUnicode) {
  StatusOr<Json> parsed = Json::Parse(R"("a\"b\\c\nA")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().AsString(), "a\"b\\c\nA");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  // Trailing garbage after a complete value is an error, not ignored.
  EXPECT_FALSE(Json::Parse("{} x").ok());
  EXPECT_EQ(Json::Parse("nope").status().code(), StatusCode::kParseError);
}

TEST(JsonFind, MissingAndWrongTypeAreNull) {
  Json obj{JsonObject{}};
  obj.Set("a", Json(1));
  EXPECT_EQ(obj.Find("b"), nullptr);
  EXPECT_EQ(Json(5.0).Find("a"), nullptr);  // not an object
}

TEST(JsonSet, ReplacesExistingKeyInPlace) {
  Json obj{JsonObject{}};
  obj.Set("a", Json(1));
  obj.Set("b", Json(2));
  obj.Set("a", Json(9));
  ASSERT_EQ(obj.AsObject().size(), 2u);
  EXPECT_DOUBLE_EQ(obj.Find("a")->AsNumber(), 9.0);
  EXPECT_EQ(obj.AsObject().front().first, "a");  // position kept
}

TEST(JsonFile, RoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/benchkit_json_test.json";
  Json doc{JsonObject{}};
  doc.Set("k", Json(7));
  ASSERT_TRUE(WriteJsonFile(path, doc).ok());
  StatusOr<Json> back = ReadJsonFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().Find("k")->AsNumber(), 7.0);
  std::remove(path.c_str());

  StatusOr<Json> missing = ReadJsonFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace joza::benchkit
