// The staged NTI matcher's filter kernels: the bit-parallel Myers distance
// must agree exactly with the Sellers reference (it is used as a REJECT
// filter, so any disagreement would change verdicts), and q-gram seeding
// must be sound (never reject an input that has a within-bound match).
#include "match/myers.h"

#include <gtest/gtest.h>

#include <string>

#include "match/levenshtein.h"
#include "match/qgram.h"
#include "match/substring.h"
#include "util/rng.h"

namespace joza::match {
namespace {

TEST(Myers, Eligibility) {
  EXPECT_FALSE(MyersEligible(""));
  EXPECT_TRUE(MyersEligible("a"));
  EXPECT_TRUE(MyersEligible(std::string(64, 'x')));
  EXPECT_FALSE(MyersEligible(std::string(65, 'x')));
  EXPECT_FALSE(MyersEligible("caf\xC3\xA9"));  // non-ASCII falls back
}

TEST(Myers, ExactOccurrenceIsZero) {
  EXPECT_EQ(MyersMinDistance("SELECT * FROM t WHERE id=-1 OR 1=1",
                             "-1 OR 1=1"),
            0u);
}

TEST(Myers, EmptyQueryCostsWholeInput) {
  // The only substring of "" is "": distance = |input|.
  EXPECT_EQ(MyersMinDistance("", "abc"), 3u);
}

TEST(Myers, KnownDistances) {
  // One backslash inserted by escaping.
  EXPECT_EQ(MyersMinDistance("WHERE a = 'x\\' OR 1'", "x' OR 1"), 1u);
  // Nothing in common: best is the empty substring.
  EXPECT_EQ(MyersMinDistance("zzzz", "qq"), 2u);
}

// Property: the kernel computes exactly the Sellers minimum — same value
// the reference matcher reports. Random strings over small alphabets to
// force interesting alignments.
TEST(MyersProperty, AgreesWithSellersReference) {
  Rng rng(2024);
  for (int i = 0; i < 400; ++i) {
    const std::size_t qlen = rng.NextBelow(60);
    const std::size_t plen = 1 + rng.NextBelow(64);
    std::string q, p;
    const char base = rng.NextBool(0.5) ? 'a' : 'x';
    for (std::size_t j = 0; j < qlen; ++j) {
      q += static_cast<char>(base + rng.NextBelow(4));
    }
    for (std::size_t j = 0; j < plen; ++j) {
      p += static_cast<char>(base + rng.NextBelow(4));
    }
    ASSERT_TRUE(MyersEligible(p));
    EXPECT_EQ(MyersMinDistance(q, p), BestSubstringMatch(q, p).distance)
        << q << " / " << p;
  }
}

TEST(MyersProperty, WordBoundaryPatterns) {
  // Exactly 64 pattern bytes: the high-bit bookkeeping has no slack.
  Rng rng(31);
  for (int i = 0; i < 60; ++i) {
    std::string p = rng.NextToken(64);
    std::string q = rng.NextToken(20 + rng.NextBelow(80));
    EXPECT_EQ(MyersMinDistance(q, p), BestSubstringMatch(q, p).distance);
    // Embedding the pattern drives the minimum to zero.
    std::string q2 = rng.NextToken(10) + p + rng.NextToken(10);
    EXPECT_EQ(MyersMinDistance(q2, p), 0u);
  }
}

TEST(QGram, ShortInputsNeverRejected) {
  QGramIndex index("SELECT 1");
  EXPECT_FALSE(index.Rejects("a", 0));
  EXPECT_FALSE(index.Rejects("", 5));
}

TEST(QGram, DisjointInputRejected) {
  QGramIndex index("SELECT name FROM users");
  // No bigram of "zzzzzzzz" occurs in the query; 0 shared grams but
  // (8-2+1) - 1*2 = 5 required.
  EXPECT_TRUE(index.Rejects("zzzzzzzz", 1));
  // A large enough bound always disables the filter.
  EXPECT_FALSE(index.Rejects("zzzzzzzz", 4));
}

TEST(QGram, CountPresent) {
  QGramIndex index("abcd");
  EXPECT_EQ(index.CountPresent("abcd"), 3u);   // ab, bc, cd
  EXPECT_EQ(index.CountPresent("abxcd"), 2u);  // ab, cd
  EXPECT_EQ(index.CountPresent("zz"), 0u);
}

// Soundness: whenever the true best substring distance is d, Rejects(input,
// d) must be false — the filter may only discard inputs that genuinely
// cannot match within the bound.
TEST(QGramProperty, NeverRejectsAWithinBoundMatch) {
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    std::string q, p;
    const std::size_t qlen = rng.NextBelow(50);
    const std::size_t plen = 1 + rng.NextBelow(20);
    for (std::size_t j = 0; j < qlen; ++j) {
      q += static_cast<char>('a' + rng.NextBelow(5));
    }
    for (std::size_t j = 0; j < plen; ++j) {
      p += static_cast<char>('a' + rng.NextBelow(5));
    }
    const std::size_t d = BestSubstringMatch(q, p).distance;
    QGramIndex index(q);
    EXPECT_FALSE(index.Rejects(p, d)) << q << " / " << p << " d=" << d;
  }
}

}  // namespace
}  // namespace joza::match
