#include "attack/catalog.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "attack/exploit.h"

namespace joza::attack {
namespace {

TEST(Catalog, FiftyThreeEntries) {
  EXPECT_EQ(PluginCatalog().size(), 53u);
  EXPECT_EQ(TestbedPlugins().size(), 50u);
  EXPECT_EQ(CaseStudyApps().size(), 3u);
}

TEST(Catalog, TableOneAttackTypeMix) {
  // Table I: 15 union / 17 standard blind / 14 double blind / 4 tautology.
  std::map<AttackType, int> counts;
  for (const PluginSpec* p : TestbedPlugins()) ++counts[p->type];
  EXPECT_EQ(counts[AttackType::kUnionBased], 15);
  EXPECT_EQ(counts[AttackType::kStandardBlind], 17);
  EXPECT_EQ(counts[AttackType::kDoubleBlind], 14);
  EXPECT_EQ(counts[AttackType::kTautology], 4);
}

TEST(Catalog, UniqueRoutes) {
  std::set<std::string> routes;
  for (const PluginSpec& p : PluginCatalog()) {
    EXPECT_TRUE(routes.insert(p.route).second) << p.route;
  }
}

TEST(Catalog, CaseStudyNames) {
  auto apps = CaseStudyApps();
  ASSERT_EQ(apps.size(), 3u);
  EXPECT_EQ(apps[0]->name, "Joomla");
  EXPECT_EQ(apps[1]->name, "Drupal");
  EXPECT_EQ(apps[2]->name, "osCommerce");
}

TEST(Catalog, TestbedInstallsAndServesBenign) {
  auto app = MakeTestbed();
  for (const PluginSpec& p : PluginCatalog()) {
    auto resp = app->Handle(http::Request::Get(p.route, {{p.param, "1"}}));
    EXPECT_NE(resp.status, 404) << p.name;
  }
}

TEST(Catalog, EveryOriginalExploitWorksUnprotected) {
  // The testbed ground truth: all 53 harvested exploits genuinely exploit
  // the unprotected application.
  auto app = MakeTestbed();
  for (const PluginSpec& p : PluginCatalog()) {
    Exploit e = OriginalExploit(p);
    EXPECT_TRUE(ExploitSucceeds(*app, p, e))
        << p.name << " [" << AttackTypeName(p.type) << "] payload \""
        << e.payload << '"';
  }
}

TEST(Catalog, BenignRequestsDoNotLeakViaExploitCriterion) {
  // Sanity for the success criterion: benign values don't count as leaks
  // on endpoints that don't project the secret.
  auto app = MakeTestbed();
  for (const PluginSpec& p : PluginCatalog()) {
    if (p.type == AttackType::kTautology) continue;  // they query wp_users
    if (p.route == "/apps/drupal") continue;         // also on wp_users
    auto resp = app->Handle(http::Request::Get(p.route, {{p.param, "1"}}));
    EXPECT_EQ(resp.body.find(kSecretMarker), std::string::npos) << p.name;
  }
}

TEST(Catalog, QueryForMatchesServedQuery) {
  // QueryFor (used to drive detectors in isolation) must reproduce exactly
  // the query the application issues for the same payload.
  auto app = MakeTestbed();
  const PluginSpec& plugin = *TestbedPlugins()[0];
  std::string captured;
  app->SetQueryGate([&captured](std::string_view sql, const http::Request&) {
    captured = std::string(sql);
    return webapp::GateDecision{};
  });
  Exploit e = OriginalExploit(plugin);
  SendPayload(*app, plugin, e.payload);
  EXPECT_EQ(captured, QueryFor(plugin, e.payload));
}

}  // namespace
}  // namespace joza::attack
