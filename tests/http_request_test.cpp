#include "http/request.h"

#include <gtest/gtest.h>

namespace joza::http {
namespace {

TEST(Request, Builders) {
  Request r = Request::Get("/page", {{"id", "5"}, {"q", "search term"}});
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/page");
  EXPECT_EQ(r.Param("id"), "5");
  EXPECT_EQ(r.Param("q"), "search term");
  EXPECT_TRUE(r.HasParam("id"));
  EXPECT_FALSE(r.HasParam("missing"));
  EXPECT_EQ(r.Param("missing"), "");
}

TEST(Request, PostParams) {
  Request r = Request::Post("/comment", {{"body", "nice post"}});
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.Param("body"), "nice post");
}

TEST(Request, CookiesAndHeaders) {
  Request r = Request::Get("/", {});
  r.WithCookie("session", "abc123").WithHeader("user-agent", "JozaBot/1.0");
  EXPECT_EQ(r.Cookie("session"), "abc123");
  EXPECT_EQ(r.Cookie("none"), "");
  auto all = r.AllInputs();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].kind, InputKind::kCookie);
  EXPECT_EQ(all[1].kind, InputKind::kHeader);
}

TEST(Request, AllInputsOrder) {
  Request r = Request::Get("/", {{"g", "1"}});
  r.post_params.push_back({InputKind::kPost, "p", "2"});
  r.WithCookie("c", "3").WithHeader("h", "4");
  auto all = r.AllInputs();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "g");
  EXPECT_EQ(all[1].name, "p");
  EXPECT_EQ(all[2].name, "c");
  EXPECT_EQ(all[3].name, "h");
}

TEST(Request, InputViewsMatchAllInputsOrderWithoutCopies) {
  Request r = Request::Get("/", {{"g", "1x"}});
  r.post_params.push_back({InputKind::kPost, "p", "2y"});
  r.WithCookie("c", "3z").WithHeader("h", "4w");
  const auto all = r.AllInputs();

  const std::uint64_t before = InputCopiesForTest();
  const auto views = r.InputViews();
  EXPECT_EQ(InputCopiesForTest() - before, 0u);

  ASSERT_EQ(views.size(), all.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].kind, all[i].kind);
    EXPECT_EQ(views[i].name, all[i].name);
    EXPECT_EQ(views[i].value, all[i].value);
  }
  // The views alias the request's own storage.
  EXPECT_EQ(views[0].value.data(), r.get_params[0].value.data());
}

TEST(Request, ForEachInputVisitsEverySourceInOrder) {
  Request r = Request::Get("/", {{"g", "1"}});
  r.post_params.push_back({InputKind::kPost, "p", "2"});
  r.WithCookie("c", "3").WithHeader("h", "4");
  std::string order;
  r.ForEachInput([&order](const InputView& v) {
    order += v.name;
    order += v.value;
  });
  EXPECT_EQ(order, "g1p2c3h4");
}

TEST(ViewsOf, BorrowsWithoutCopying) {
  const std::vector<Input> inputs = {{InputKind::kGet, "a", "hello"},
                                     {InputKind::kCookie, "b", "world"}};
  const std::uint64_t before = InputCopiesForTest();
  const auto views = ViewsOf(inputs);
  EXPECT_EQ(InputCopiesForTest() - before, 0u);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].name, "a");
  EXPECT_EQ(views[1].kind, InputKind::kCookie);
  EXPECT_EQ(views[0].value.data(), inputs[0].value.data());
}

TEST(ParseQueryString, DecodesPairs) {
  auto inputs = ParseQueryString("id=5&q=a%20b&flag", InputKind::kGet);
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[0].name, "id");
  EXPECT_EQ(inputs[0].value, "5");
  EXPECT_EQ(inputs[1].value, "a b");
  EXPECT_EQ(inputs[2].name, "flag");
  EXPECT_EQ(inputs[2].value, "");
}

TEST(ParseQueryString, PlusAsSpace) {
  auto inputs = ParseQueryString("q=hello+world", InputKind::kGet);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].value, "hello world");
}

TEST(ParseQueryString, Empty) {
  EXPECT_TRUE(ParseQueryString("", InputKind::kGet).empty());
}

TEST(ParseRawRequest, GetWithQuery) {
  auto r = ParseRawRequest(
      "GET /plugin.php?id=-1%20OR%201%3D1 HTTP/1.1\r\n"
      "Host: victim.example\r\n"
      "Cookie: wp_session=tok123; theme=dark\r\n"
      "\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->method, "GET");
  EXPECT_EQ(r->path, "/plugin.php");
  EXPECT_EQ(r->Param("id"), "-1 OR 1=1");
  EXPECT_EQ(r->Cookie("wp_session"), "tok123");
  EXPECT_EQ(r->Cookie("theme"), "dark");
  ASSERT_EQ(r->headers.size(), 1u);
  EXPECT_EQ(r->headers[0].name, "host");
}

TEST(ParseRawRequest, PostBody) {
  auto r = ParseRawRequest(
      "POST /comment HTTP/1.1\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n"
      "\r\n"
      "author=eve&body=x%27%20OR%201%3D1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Param("author"), "eve");
  EXPECT_EQ(r->Param("body"), "x' OR 1=1");
}

TEST(ParseRawRequest, BareNewlinesAccepted) {
  auto r = ParseRawRequest("GET /x?a=1 HTTP/1.1\nHost: h\n\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Param("a"), "1");
}

TEST(ParseRawRequest, Malformed) {
  EXPECT_FALSE(ParseRawRequest("").ok());
  EXPECT_FALSE(ParseRawRequest("GARBAGE").ok());
  EXPECT_FALSE(ParseRawRequest("GET\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseRawRequest("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n").ok());
}

}  // namespace
}  // namespace joza::http
