#include <gtest/gtest.h>

#include "core/joza.h"

namespace joza::core {
namespace {

using http::Input;
using http::InputKind;

php::FragmentSet BasicFragments() {
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM records WHERE ID=");
  set.AddRaw(" LIMIT 5");
  return set;
}

TEST(AttackSink, InvokedOncePerAttack) {
  Joza joza(BasicFragments());
  std::vector<AttackReport> reports;
  joza.SetAttackSink([&reports](const AttackReport& r) {
    reports.push_back(r);
  });
  joza.Check("SELECT * FROM records WHERE ID=5 LIMIT 5", {});
  EXPECT_TRUE(reports.empty());
  joza.Check("SELECT * FROM records WHERE ID=1 OR 1=1 LIMIT 5",
             {Input{InputKind::kGet, "id", "1 OR 1=1"}});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].detected_by, DetectedBy::kBoth);
  EXPECT_EQ(reports[0].sequence, 1u);
  EXPECT_NE(reports[0].query.find("OR 1=1"), std::string::npos);
}

TEST(AttackSink, CarriesPtiEvidence) {
  Joza joza(BasicFragments());
  std::vector<AttackReport> reports;
  joza.SetAttackSink([&reports](const AttackReport& r) {
    reports.push_back(r);
  });
  joza.Check("SELECT * FROM records WHERE ID=1 UNION SELECT username() LIMIT 5",
             {});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].detected_by, DetectedBy::kPti);
  bool has_union = false;
  for (const std::string& t : reports[0].untrusted_tokens) {
    if (t == "UNION") has_union = true;
  }
  EXPECT_TRUE(has_union);
  EXPECT_TRUE(reports[0].matched_input_name.empty());
}

TEST(AttackSink, CarriesNtiEvidence) {
  // Rich vocabulary so PTI stays quiet and the NTI path fills the report.
  php::FragmentSet set = BasicFragments();
  set.AddRaw("OR");
  set.AddRaw("=");
  Joza joza(std::move(set));
  std::vector<AttackReport> reports;
  joza.SetAttackSink([&reports](const AttackReport& r) {
    reports.push_back(r);
  });
  joza.Check("SELECT * FROM records WHERE ID=1 OR 1 = 1 LIMIT 5",
             {Input{InputKind::kCookie, "track", "1 OR 1 = 1"}});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].detected_by, DetectedBy::kNti);
  EXPECT_EQ(reports[0].matched_input_name, "track");
  EXPECT_EQ(reports[0].matched_input_kind, InputKind::kCookie);
  EXPECT_GT(reports[0].matched_span.length(), 0u);
  EXPECT_DOUBLE_EQ(reports[0].match_ratio, 0.0);
}

TEST(AttackSink, LogLineRendering) {
  AttackReport r;
  r.sequence = 7;
  r.detected_by = DetectedBy::kBoth;
  r.query = "SELECT 1 OR 1=1";
  r.matched_input_name = "id";
  r.matched_input_kind = InputKind::kGet;
  r.matched_span = {9, 15};
  r.untrusted_tokens = {"OR"};
  std::string line = r.ToLogLine();
  EXPECT_NE(line.find("JOZA-ATTACK #7"), std::string::npos);
  EXPECT_NE(line.find("by=NTI+PTI"), std::string::npos);
  EXPECT_NE(line.find("GET:id"), std::string::npos);
  EXPECT_NE(line.find("\"OR\""), std::string::npos);
  EXPECT_NE(line.find("span=[9,15)"), std::string::npos);
}

TEST(AttackSink, NotInvokedOnCacheHitSafeQueries) {
  Joza joza(BasicFragments());
  std::size_t calls = 0;
  joza.SetAttackSink([&calls](const AttackReport&) { ++calls; });
  const std::string q = "SELECT * FROM records WHERE ID=3 LIMIT 5";
  joza.Check(q, {});
  joza.Check(q, {});  // query-cache hit
  EXPECT_EQ(calls, 0u);
}

}  // namespace
}  // namespace joza::core
