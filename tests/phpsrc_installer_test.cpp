#include "phpsrc/installer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace joza::php {
namespace {

namespace fs = std::filesystem;

class InstallerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("joza_installer_test_" + std::to_string(::getpid()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "wp-content" / "plugins" / "demo");
    fs::create_directories(root_ / ".git");
    Write("index.php", "<?php $q = 'SELECT * FROM wp_posts WHERE id = ';");
    Write("wp-content/plugins/demo/demo.php",
          "<?php $q = \"SELECT meta FROM demo WHERE k = '$k' LIMIT 1\";");
    Write("readme.txt", "'SELECT should not be extracted from txt'");
    Write(".git/config", "$x = 'SELECT nothing FROM vcs';");
  }

  void TearDown() override { fs::remove_all(root_); }

  void Write(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel);
    out << content;
  }

  fs::path root_;
};

TEST_F(InstallerTest, RecursiveScanExtractsFragments) {
  ScanReport report;
  auto set = InstallFromDirectory(root_.string(), {}, &report);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_TRUE(set->Contains("SELECT * FROM wp_posts WHERE id = "));
  EXPECT_TRUE(set->Contains("SELECT meta FROM demo WHERE k = '"));
  EXPECT_TRUE(set->Contains("' LIMIT 1"));
}

TEST_F(InstallerTest, NonSourceFilesIgnored) {
  auto set = InstallFromDirectory(root_.string());
  ASSERT_TRUE(set.ok());
  for (const Fragment& f : set->fragments()) {
    EXPECT_EQ(f.text.find("not be extracted"), std::string::npos);
    EXPECT_EQ(f.text.find("vcs"), std::string::npos);
  }
}

TEST_F(InstallerTest, SkipDirectoriesHonored) {
  // .git is skipped even though its file ends in no extension anyway; add a
  // .php inside to prove the directory rule, not the extension rule, wins.
  Write(".git/hook.php", "<?php $q = 'SELECT sneaky FROM vcs2';");
  auto set = InstallFromDirectory(root_.string());
  ASSERT_TRUE(set.ok());
  for (const Fragment& f : set->fragments()) {
    EXPECT_EQ(f.text.find("vcs2"), std::string::npos);
  }
}

TEST_F(InstallerTest, SourcePathsAreRelative) {
  auto files = LoadSourceTree(root_.string(), {}, nullptr);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u);
  EXPECT_EQ((*files)[0].path, "index.php");
  EXPECT_EQ((*files)[1].path, "wp-content/plugins/demo/demo.php");
}

TEST_F(InstallerTest, MissingDirectoryFails) {
  auto set = InstallFromDirectory((root_ / "nope").string());
  EXPECT_FALSE(set.ok());
}

TEST_F(InstallerTest, OversizeFilesSkipped) {
  ScanOptions options;
  options.max_file_bytes = 8;
  ScanReport report;
  auto set = InstallFromDirectory(root_.string(), options, &report);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(report.files_scanned, 0u);
  EXPECT_GE(report.files_skipped, 2u);
}

TEST_F(InstallerTest, SaveLoadRoundTrip) {
  auto set = InstallFromDirectory(root_.string());
  ASSERT_TRUE(set.ok());
  const std::string path = (root_ / "fragments.jzfr").string();
  ASSERT_TRUE(SaveFragments(set.value(), path).ok());
  auto loaded = LoadFragments(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), set->size());
  for (const Fragment& f : set->fragments()) {
    EXPECT_TRUE(loaded->Contains(f.text)) << f.text;
  }
  // Provenance survives.
  EXPECT_EQ(loaded->fragments()[0].source_path,
            set->fragments()[0].source_path);
}

TEST_F(InstallerTest, LoadRejectsCorruptFiles) {
  const std::string path = (root_ / "bad.jzfr").string();
  std::ofstream(path) << "not a fragment file";
  EXPECT_FALSE(LoadFragments(path).ok());
  std::ofstream(path, std::ios::trunc) << "JZFR\x01\xff\xff\xff\xff";
  EXPECT_FALSE(LoadFragments(path).ok());
  EXPECT_FALSE(LoadFragments((root_ / "missing.jzfr").string()).ok());
}

}  // namespace
}  // namespace joza::php
