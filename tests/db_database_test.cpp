#include "db/database.h"

#include <gtest/gtest.h>

namespace joza::db {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE posts (id INT, title VARCHAR(255),"
                            " views INT)")
                    .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO posts (id, title, views) VALUES "
                            "(1, 'Hello World', 100), "
                            "(2, 'Second Post', 50), "
                            "(3, 'Drafts', 0)")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE users (id INT, login VARCHAR(64), "
                    "pass VARCHAR(64), secret VARCHAR(64))")
            .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO users VALUES "
                            "(1, 'admin', 'p4ss', 'topsecret'), "
                            "(2, 'bob', 'hunter2', 'bobsecret')")
                    .ok());
  }
  Database db_;
};

TEST_F(DatabaseTest, SimpleSelect) {
  auto r = db_.Execute("SELECT title FROM posts WHERE id = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "Second Post");
}

TEST_F(DatabaseTest, SelectStar) {
  auto r = db_.Execute("SELECT * FROM posts");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns.size(), 3u);
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->columns[1], "title");
}

TEST_F(DatabaseTest, WhereComparisons) {
  auto r = db_.Execute("SELECT id FROM posts WHERE views >= 50");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  r = db_.Execute("SELECT id FROM posts WHERE title LIKE '%post%'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  r = db_.Execute("SELECT id FROM posts WHERE id BETWEEN 2 AND 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  r = db_.Execute("SELECT id FROM posts WHERE id IN (1, 3)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(DatabaseTest, TautologyBypassesWhere) {
  // The attack class: WHERE id = -1 OR 1=1 returns everything.
  auto r = db_.Execute("SELECT * FROM users WHERE id = -1 OR 1 = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(DatabaseTest, UnionExfiltratesOtherTable) {
  // Union-based attack: pivot from posts into users.
  auto r = db_.Execute(
      "SELECT title FROM posts WHERE id = -1 "
      "UNION SELECT secret FROM users");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_string(), "topsecret");
}

TEST_F(DatabaseTest, UnionColumnCountMismatchErrors) {
  // The probe signal used when sweeping column counts in union attacks.
  auto r = db_.Execute("SELECT id, title FROM posts UNION SELECT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("different number of columns"),
            std::string::npos);
}

TEST_F(DatabaseTest, UnionDeduplicates) {
  auto r = db_.Execute("SELECT 1 UNION SELECT 1 UNION SELECT 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  r = db_.Execute("SELECT 1 UNION ALL SELECT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(DatabaseTest, OrderByAndLimit) {
  auto r = db_.Execute("SELECT id FROM posts ORDER BY views DESC LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 1);
  EXPECT_EQ(r->rows[1][0].as_int(), 2);
}

TEST_F(DatabaseTest, OrderByPosition) {
  auto r = db_.Execute("SELECT id, views FROM posts ORDER BY 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][1].as_int(), 0);
  // ORDER BY out-of-range position errors — another classic probe channel.
  EXPECT_FALSE(db_.Execute("SELECT id FROM posts ORDER BY 99").ok());
}

TEST_F(DatabaseTest, LimitOffset) {
  auto r = db_.Execute("SELECT id FROM posts ORDER BY id LIMIT 1 OFFSET 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 2);
  r = db_.Execute("SELECT id FROM posts ORDER BY id LIMIT 1, 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 2);
}

TEST_F(DatabaseTest, Aggregates) {
  auto r = db_.Execute("SELECT COUNT(*), SUM(views), MIN(views), MAX(views),"
                       " AVG(views) FROM posts");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
  EXPECT_EQ(r->rows[0][1].as_int(), 150);
  EXPECT_EQ(r->rows[0][2].as_int(), 0);
  EXPECT_EQ(r->rows[0][3].as_int(), 100);
  EXPECT_DOUBLE_EQ(r->rows[0][4].as_double(), 50.0);
}

TEST_F(DatabaseTest, GroupBy) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE votes (post_id INT, v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO votes VALUES (1,1),(1,1),(2,1)").ok());
  auto r = db_.Execute(
      "SELECT post_id, COUNT(*) AS n FROM votes GROUP BY post_id "
      "ORDER BY n DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].as_int(), 1);
  EXPECT_EQ(r->rows[0][1].as_int(), 2);
}

TEST_F(DatabaseTest, GroupConcat) {
  auto r = db_.Execute("SELECT GROUP_CONCAT(login) FROM users");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_string(), "admin,bob");
}

TEST_F(DatabaseTest, Having) {
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM posts GROUP BY id HAVING COUNT(*) > 1");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(DatabaseTest, Joins) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE meta (post_id INT, k VARCHAR(32),"
                          " v VARCHAR(32))")
                  .ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO meta VALUES (1, 'color', 'red')").ok());
  auto r = db_.Execute(
      "SELECT p.title, m.v FROM posts p "
      "JOIN meta m ON p.id = m.post_id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].as_string(), "red");

  r = db_.Execute(
      "SELECT p.id, m.v FROM posts p "
      "LEFT JOIN meta m ON p.id = m.post_id ORDER BY 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_TRUE(r->rows[1][1].is_null());  // NULL-extended
}

TEST_F(DatabaseTest, Subqueries) {
  auto r = db_.Execute(
      "SELECT login FROM users WHERE id IN (SELECT id FROM posts WHERE "
      "views > 60)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "admin");

  r = db_.Execute("SELECT (SELECT MAX(views) FROM posts) + 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 101);
}

TEST_F(DatabaseTest, InsertUpdateDelete) {
  auto r = db_.Execute("INSERT INTO posts VALUES (4, 'New', 1)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected, 1u);
  r = db_.Execute("UPDATE posts SET views = views + 10 WHERE id = 4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected, 1u);
  auto check = db_.Execute("SELECT views FROM posts WHERE id = 4");
  EXPECT_EQ(check->rows[0][0].as_int(), 11);
  r = db_.Execute("DELETE FROM posts WHERE id = 4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->affected, 1u);
  check = db_.Execute("SELECT COUNT(*) FROM posts");
  EXPECT_EQ(check->rows[0][0].as_int(), 3);
}

TEST_F(DatabaseTest, InsertColumnSubset) {
  ASSERT_TRUE(db_.Execute("INSERT INTO posts (id) VALUES (9)").ok());
  auto r = db_.Execute("SELECT title FROM posts WHERE id = 9");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows[0][0].is_null());
}

TEST_F(DatabaseTest, StringFunctions) {
  auto r = db_.Execute(
      "SELECT UPPER('abc'), LENGTH('abcd'), SUBSTRING('abcdef', 2, 3), "
      "CONCAT('a', 'b', 1), ASCII('A'), HEX('AB'), INSTR('hello', 'LL')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& row = r->rows[0];
  EXPECT_EQ(row[0].as_string(), "ABC");
  EXPECT_EQ(row[1].as_int(), 4);
  EXPECT_EQ(row[2].as_string(), "bcd");
  EXPECT_EQ(row[3].as_string(), "ab1");
  EXPECT_EQ(row[4].as_int(), 65);
  EXPECT_EQ(row[5].as_string(), "4142");
  EXPECT_EQ(row[6].as_int(), 3);
}

TEST_F(DatabaseTest, SubstringNegativePosition) {
  auto r = db_.Execute("SELECT SUBSTRING('abcdef', -2)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_string(), "ef");
}

TEST_F(DatabaseTest, InfoFunctions) {
  auto r = db_.Execute("SELECT VERSION(), DATABASE(), USER()");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->rows[0][0].as_string().find("joza"), std::string::npos);
  EXPECT_EQ(r->rows[0][1].as_string(), "wordpress");
  EXPECT_NE(r->rows[0][2].as_string().find("@"), std::string::npos);
}

TEST_F(DatabaseTest, SleepAccumulatesVirtualTime) {
  // The double-blind timing channel.
  auto r = db_.Execute("SELECT IF(1=1, SLEEP(2), 0)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->virtual_time_ms, 2000.0);
  r = db_.Execute("SELECT IF(1=2, SLEEP(2), 0)");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->virtual_time_ms, 0.0);
}

TEST_F(DatabaseTest, BenchmarkVirtualTime) {
  auto r = db_.Execute("SELECT BENCHMARK(1000000, MD5('x'))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->virtual_time_ms, 50.0);
}

TEST_F(DatabaseTest, ConditionalCase) {
  auto r = db_.Execute(
      "SELECT CASE WHEN views > 60 THEN 'hot' ELSE 'cold' END FROM posts "
      "ORDER BY id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_string(), "hot");
  EXPECT_EQ(r->rows[1][0].as_string(), "cold");
}

TEST_F(DatabaseTest, CastFunction) {
  auto r = db_.Execute("SELECT CAST('12abc' AS SIGNED), CAST(5 AS CHAR)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_int(), 12);
  EXPECT_EQ(r->rows[0][1].as_string(), "5");
}

TEST_F(DatabaseTest, ErrorBasedInjectionChannel) {
  // EXTRACTVALUE leaks its argument through the error message.
  auto r = db_.Execute(
      "SELECT EXTRACTVALUE(1, CONCAT('~', (SELECT pass FROM users "
      "WHERE login = 'admin')))");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("p4ss"), std::string::npos);
}

TEST_F(DatabaseTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM nonexistent").ok());
  EXPECT_FALSE(db_.Execute("SELECT nocolumn FROM posts").ok());
  EXPECT_FALSE(db_.Execute("totally not sql").ok());
  EXPECT_FALSE(db_.Execute("SELECT UNKNOWNFN(1)").ok());
}

TEST_F(DatabaseTest, CreateDropLifecycle) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE tmp (a INT)").ok());
  EXPECT_TRUE(db_.HasTable("tmp"));
  EXPECT_FALSE(db_.Execute("CREATE TABLE tmp (a INT)").ok());
  EXPECT_TRUE(db_.Execute("CREATE TABLE IF NOT EXISTS tmp (a INT)").ok());
  ASSERT_TRUE(db_.Execute("DROP TABLE tmp").ok());
  EXPECT_FALSE(db_.HasTable("tmp"));
  EXPECT_FALSE(db_.Execute("DROP TABLE tmp").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS tmp").ok());
}

TEST_F(DatabaseTest, MysqlCoercionInWhere) {
  // WHERE title = 0 matches all non-numeric titles (MySQL coercion), the
  // subtle behaviour several real exploits rely on.
  auto r = db_.Execute("SELECT COUNT(*) FROM posts WHERE title = 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 3);
}

TEST_F(DatabaseTest, CommentsInQueryIgnoredByEngine) {
  auto r = db_.Execute("SELECT id FROM posts /* inline */ WHERE id = 1 -- x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(DatabaseTest, SelectWithoutFrom) {
  auto r = db_.Execute("SELECT 1 + 1, 'x'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].as_int(), 2);
}

TEST_F(DatabaseTest, DistinctRows) {
  auto r = db_.Execute("SELECT DISTINCT 1 FROM posts");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

}  // namespace
}  // namespace joza::db
