#include "sqlparse/parser.h"

#include <gtest/gtest.h>

namespace joza::sql {
namespace {

TEST(Parser, SimpleSelect) {
  auto r = Parse("SELECT * FROM records WHERE ID = 5 LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stmt = r.value();
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  const auto& sel = *stmt.select;
  ASSERT_EQ(sel.cores.size(), 1u);
  const auto& core = sel.cores[0];
  ASSERT_EQ(core.items.size(), 1u);
  EXPECT_EQ(core.items[0].expr->kind, ExprKind::kColumnRef);
  EXPECT_EQ(core.items[0].expr->column, "*");
  ASSERT_TRUE(core.from.has_value());
  EXPECT_EQ(core.from->table, "records");
  ASSERT_NE(core.where, nullptr);
  EXPECT_EQ(core.where->kind, ExprKind::kBinary);
  EXPECT_EQ(core.where->binary_op, BinaryOp::kEq);
  ASSERT_TRUE(sel.limit.has_value());
  EXPECT_EQ(*sel.limit, 5);
}

TEST(Parser, UnionChain) {
  auto r = Parse("SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& sel = *r.value().select;
  ASSERT_EQ(sel.cores.size(), 3u);
  ASSERT_EQ(sel.union_all.size(), 2u);
  EXPECT_TRUE(sel.union_all[0]);
  EXPECT_FALSE(sel.union_all[1]);
}

TEST(Parser, OrderByLimitOffset) {
  auto r = Parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 20");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& sel = *r.value().select;
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_FALSE(sel.order_by[1].descending);
  EXPECT_EQ(*sel.limit, 10);
  EXPECT_EQ(*sel.offset, 20);
}

TEST(Parser, MysqlLimitCommaForm) {
  auto r = Parse("SELECT a FROM t LIMIT 20, 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& sel = *r.value().select;
  EXPECT_EQ(*sel.limit, 10);
  EXPECT_EQ(*sel.offset, 20);
}

TEST(Parser, OperatorPrecedence) {
  // a OR b AND c parses as a OR (b AND c)
  auto r = ParseExpression("a OR b AND c");
  ASSERT_TRUE(r.ok());
  const auto& e = *r.value();
  EXPECT_EQ(e.binary_op, BinaryOp::kOr);
  EXPECT_EQ(e.rhs->binary_op, BinaryOp::kAnd);
}

TEST(Parser, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  auto r = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(r.ok());
  const auto& e = *r.value();
  EXPECT_EQ(e.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.rhs->binary_op, BinaryOp::kMul);
}

TEST(Parser, TautologyExpression) {
  auto r = ParseExpression("1 OR 1 = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->binary_op, BinaryOp::kOr);
}

TEST(Parser, FunctionCalls) {
  auto r = ParseExpression("CONCAT(a, 'x', 1+2)");
  ASSERT_TRUE(r.ok());
  const auto& e = *r.value();
  EXPECT_EQ(e.kind, ExprKind::kFunctionCall);
  EXPECT_EQ(e.function_name, "CONCAT");
  EXPECT_EQ(e.args.size(), 3u);
}

TEST(Parser, CountStar) {
  auto r = ParseExpression("COUNT(*)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->args.size(), 1u);
  EXPECT_EQ(r.value()->args[0]->column, "*");
}

TEST(Parser, InList) {
  auto r = ParseExpression("id IN (1, 2, 3)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->kind, ExprKind::kInList);
  EXPECT_EQ(r.value()->in_list.size(), 3u);
  r = ParseExpression("id NOT IN (1)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()->negated);
}

TEST(Parser, Between) {
  auto r = ParseExpression("x BETWEEN 1 AND 10");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->kind, ExprKind::kBetween);
}

TEST(Parser, IsNull) {
  auto r = ParseExpression("x IS NULL");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->unary_op, UnaryOp::kIsNull);
  r = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->unary_op, UnaryOp::kIsNotNull);
}

TEST(Parser, LikeAndNotLike) {
  auto r = ParseExpression("name LIKE '%abc%'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->binary_op, BinaryOp::kLike);
  r = ParseExpression("name NOT LIKE 'x'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->binary_op, BinaryOp::kNotLike);
}

TEST(Parser, Subquery) {
  auto r = Parse("SELECT * FROM t WHERE id IN (SELECT id FROM u)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& where = r.value().select->cores[0].where;
  ASSERT_EQ(where->kind, ExprKind::kInList);
  ASSERT_EQ(where->in_list.size(), 1u);
  EXPECT_EQ(where->in_list[0]->kind, ExprKind::kSubquery);
}

TEST(Parser, ScalarSubquery) {
  auto r = Parse("SELECT (SELECT MAX(id) FROM u) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().select->cores[0].items[0].expr->kind,
            ExprKind::kSubquery);
}

TEST(Parser, Joins) {
  auto r = Parse(
      "SELECT a.x, b.y FROM posts a "
      "LEFT JOIN meta b ON a.id = b.post_id WHERE a.id = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& core = r.value().select->cores[0];
  EXPECT_EQ(core.from->alias, "a");
  ASSERT_EQ(core.joins.size(), 1u);
  EXPECT_EQ(core.joins[0].kind, JoinClause::Kind::kLeft);
  ASSERT_NE(core.joins[0].on, nullptr);
}

TEST(Parser, CommaJoin) {
  auto r = Parse("SELECT * FROM a, b WHERE a.id = b.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().select->cores[0].joins.size(), 1u);
}

TEST(Parser, Insert) {
  auto r = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& ins = *r.value().insert;
  EXPECT_EQ(ins.table, "t");
  ASSERT_EQ(ins.columns.size(), 2u);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[1][0]->int_value, 2);
}

TEST(Parser, Update) {
  auto r = Parse("UPDATE t SET a = 1, b = 'x' WHERE id = 9 LIMIT 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& upd = *r.value().update;
  EXPECT_EQ(upd.table, "t");
  ASSERT_EQ(upd.assignments.size(), 2u);
  ASSERT_NE(upd.where, nullptr);
  EXPECT_EQ(*upd.limit, 1);
}

TEST(Parser, Delete) {
  auto r = Parse("DELETE FROM t WHERE id = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().del->table, "t");
}

TEST(Parser, CreateTable) {
  auto r = Parse(
      "CREATE TABLE IF NOT EXISTS wp_posts ("
      "id INT PRIMARY KEY AUTO_INCREMENT, title VARCHAR(255), "
      "views INT, rating DOUBLE)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& c = *r.value().create;
  EXPECT_TRUE(c.if_not_exists);
  EXPECT_EQ(c.table, "wp_posts");
  ASSERT_EQ(c.columns.size(), 4u);
  EXPECT_EQ(c.columns[0].type, ColumnDef::Type::kInt);
  EXPECT_EQ(c.columns[1].type, ColumnDef::Type::kText);
  EXPECT_EQ(c.columns[3].type, ColumnDef::Type::kDouble);
}

TEST(Parser, DropTable) {
  auto r = Parse("DROP TABLE IF EXISTS junk");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().drop->if_exists);
  EXPECT_EQ(r.value().drop->table, "junk");
}

TEST(Parser, CaseExpressionDesugarsToIf) {
  auto r = ParseExpression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->kind, ExprKind::kFunctionCall);
  EXPECT_EQ(r.value()->function_name, "IF");
  EXPECT_EQ(r.value()->args.size(), 3u);
}

TEST(Parser, CommentsSkippedTransparently) {
  auto r = Parse("SELECT /* c1 */ a FROM t -- tail");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(Parser, InjectedQueryStillParses) {
  // The classic tautology injection must parse so the engine can run it —
  // detection is the taint layer's job, not the parser's.
  auto r = Parse("SELECT * FROM data WHERE ID = -1 OR 1 = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().select->cores[0].where->binary_op, BinaryOp::kOr);
}

TEST(Parser, UnionInjectionParses) {
  auto r = Parse(
      "SELECT * FROM records WHERE ID = -1 "
      "UNION SELECT username() LIMIT 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().select->cores.size(), 2u);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELEC * FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(Parse("SELECT 1 garbage garbage garbage +").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
}

TEST(Parser, PlaceholdersInQuery) {
  auto r = Parse("SELECT * FROM t WHERE a = ? AND b = :uid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(Parser, StringUnescaping) {
  auto r = ParseExpression(R"('a\'b')");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->string_value, "a'b");
  r = ParseExpression("'a''b'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->string_value, "a'b");
}

}  // namespace
}  // namespace joza::sql
