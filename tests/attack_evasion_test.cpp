// Unit tests for the evasion engines themselves (the security fixture
// exercises them end-to-end; these pin the mechanics).
#include "attack/evasion.h"

#include <gtest/gtest.h>

#include "attack/vocab_kits.h"
#include "match/substring.h"

namespace joza::attack {
namespace {

const PluginSpec& Find(const char* name) {
  for (const PluginSpec& p : PluginCatalog()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << name;
  static PluginSpec dummy;
  return dummy;
}

TEST(Recase, UppercasesOnlyKeywordsAndFunctions) {
  EXPECT_EQ(RecaseSqlTokens("-1 union select login, pass from wp_users"),
            "-1 UNION SELECT login, pass FROM wp_users");
  EXPECT_EQ(RecaseSqlTokens("0 or char(65) > 0"), "0 OR CHAR(65) > 0");
  // Identifiers and string contents untouched.
  EXPECT_EQ(RecaseSqlTokens("select 'keep or this' from t"),
            "SELECT 'keep or this' FROM t");
  // An unbalanced breakout quote swallows the tail into one string token:
  // nothing lexes as a keyword, so recasing is a no-op — which is why
  // Taintless' case-match step cannot rescue quoted-context payloads.
  EXPECT_EQ(RecaseSqlTokens("x' or 1=1 -- a"), "x' or 1=1 -- a");
}

TEST(NtiMutation, TechniqueSelectionFollowsTransformChain) {
  nti::NtiConfig cfg;
  auto technique = [&cfg](const char* plugin) {
    return MutateForNtiEvasion(Find(plugin), OriginalExploit(Find(plugin)),
                               cfg)
        .technique;
  };
  EXPECT_EQ(technique("AdRotate"), "transport-encoding");        // base64
  EXPECT_EQ(technique("Community Events"), "quote-comment");     // magic only
  EXPECT_EQ(technique("Eventify"), "whitespace-padding");        // identity+trim
  EXPECT_EQ(technique("GD Star Rating"), "quote-comment");       // rich blind
  NtiMutation m = MutateForNtiEvasion(Find("Profiles"),
                                      OriginalExploit(Find("Profiles")), cfg);
  EXPECT_FALSE(m.possible);  // identity chain, nothing to hide behind
}

TEST(NtiMutation, QuoteCommentClearsThresholdWithMargin) {
  // The mutated payload's own difference ratio must exceed the threshold
  // it was built against — verified with the real matcher.
  const PluginSpec& plugin = Find("Community Events");
  nti::NtiConfig cfg;  // t = 0.20
  Exploit original = OriginalExploit(plugin);
  NtiMutation m = MutateForNtiEvasion(plugin, original, cfg);
  ASSERT_TRUE(m.possible);
  const std::string query = QueryFor(plugin, m.exploit.payload);
  auto match = match::BestSubstringMatch(query, m.exploit.payload);
  EXPECT_GT(match.ratio, cfg.threshold * 1.2)
      << "mutation must clear the threshold with margin";
}

TEST(NtiMutation, WhitespacePaddingScalesWithThreshold) {
  const PluginSpec& plugin = Find("Eventify");
  Exploit original = OriginalExploit(plugin);
  nti::NtiConfig strict;
  strict.threshold = 0.10;
  nti::NtiConfig loose;
  loose.threshold = 0.40;
  auto pad = [&](const nti::NtiConfig& cfg) {
    NtiMutation m = MutateForNtiEvasion(plugin, original, cfg);
    return m.exploit.payload.size() - original.payload.size();
  };
  EXPECT_GT(pad(loose), pad(strict))
      << "a higher threshold demands more padding";
}

TEST(NtiMutation, ProbePairsGetBothPayloadsMutated) {
  const PluginSpec& plugin = Find("MyStat");  // blind: probe pair
  Exploit original = OriginalExploit(plugin);
  NtiMutation m = MutateForNtiEvasion(plugin, original, {});
  ASSERT_TRUE(m.possible);
  EXPECT_TRUE(m.exploit.is_probe_pair);
  EXPECT_GT(m.exploit.payload.size(), original.payload.size());
  EXPECT_GT(m.exploit.false_payload.size(), original.false_payload.size());
}

TEST(Taintless, ReportsStrategyAndCandidateCount) {
  auto app = MakeTestbed();
  pti::PtiAnalyzer pti(php::FragmentSet::FromSources(app->sources()));
  TaintlessResult r = RunTaintless(Find("Community Events"), pti, *app);
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(r.strategy.empty());
  EXPECT_GE(r.candidates_tried, 1u);

  TaintlessResult fail = RunTaintless(Find("Eventify"), pti, *app);
  EXPECT_FALSE(fail.success);
  EXPECT_GE(fail.candidates_tried, 2u) << "all candidates were tried";
}

TEST(Taintless, KitPayloadsUseExactKitBytes) {
  auto app = MakeTestbed();
  pti::PtiAnalyzer pti(php::FragmentSet::FromSources(app->sources()));
  TaintlessResult r = RunTaintless(Find("Count per Day"), pti, *app);
  ASSERT_TRUE(r.success);
  EXPECT_NE(r.exploit.payload.find(std::string(kKitUnion2)),
            std::string::npos)
      << "the adapted payload must be assembled from the plugin's own "
         "vocabulary bytes";
}

}  // namespace
}  // namespace joza::attack
