// IPC failure-path behaviour: protocol errors are answered, broken pipes
// surface as status errors, and the Joza adapter fails closed.
#include <gtest/gtest.h>

#include <thread>
#include <unistd.h>

#include "core/joza.h"
#include "ipc/daemon.h"
#include "ipc/framing.h"

namespace joza::ipc {
namespace {

php::FragmentSet OneFragment() {
  php::FragmentSet set;
  set.AddRaw("SELECT 1");
  return set;
}

TEST(DaemonErrors, UnknownMessageTypeAnswered) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, OneFragment());
  });
  // kPong is not a valid request type.
  ASSERT_TRUE(WriteFrame(req->second.get(), {MessageType::kPong, ""}).ok());
  auto r = ReadFrame(resp->first.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, MessageType::kError);
  // The daemon keeps serving after a protocol error.
  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kAnalyzeRequest, "SELECT 1"})
          .ok());
  auto ok = ReadFrame(resp->first.get());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->type, MessageType::kAnalyzeResponse);
  req->second.Close();
  server.join();
}

TEST(DaemonErrors, MalformedAddFragmentsAnswered) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, OneFragment());
  });
  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kAddFragments, "\x01"})
          .ok());
  auto r = ReadFrame(resp->first.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, MessageType::kError);
  req->second.Close();
  server.join();
}

TEST(DaemonErrors, ServerCountsServedQueries) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::size_t served = 0;
  std::thread server([&served, rfd = req->first.get(),
                      wfd = resp->second.get()] {
    served = ServePtiDaemon(rfd, wfd, OneFragment());
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(WriteFrame(req->second.get(),
                           {MessageType::kAnalyzeRequest, "SELECT 1"})
                    .ok());
    ASSERT_TRUE(ReadFrame(resp->first.get()).ok());
  }
  req->second.Close();
  server.join();
  EXPECT_EQ(served, 5u);
}

TEST(DaemonErrors, JozaAdapterFailsClosedOnDeadDaemon) {
  // Build a backend from a client, then make its pipes unusable by
  // shutting the daemon down while keeping the adapter alive.
  auto client = std::make_unique<DaemonClient>(
      DaemonClient::Mode::kPersistent, OneFragment());
  ASSERT_TRUE(client->Ping().ok());

  core::JozaConfig cfg;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  cfg.enable_nti = false;
  core::Joza joza(OneFragment(), cfg);
  joza.SetPtiBackend(client->AsPtiBackend());

  // Healthy: the trivially-covered query is safe.
  EXPECT_FALSE(joza.Check("SELECT 1", {}).attack);

  // Destroying the client would leave a dangling backend, so test the
  // engine's contract directly: a backend that cannot produce a verdict
  // returns an error Status, and the engine's default degraded mode
  // (fail-closed) must block the query.
  joza.SetPtiBackend([](std::string_view, const std::vector<sql::Token>&,
                        util::Deadline) -> StatusOr<pti::PtiResult> {
    return Status::Unavailable("daemon unreachable");
  });
  core::Verdict v = joza.Check("SELECT 1", {});
  EXPECT_TRUE(v.attack);
  EXPECT_TRUE(v.degraded);
  EXPECT_TRUE(v.pti_unavailable);
  // A degraded block is not a detection: nothing to attribute, nothing in
  // the attack counter, but the degraded counters light up.
  EXPECT_EQ(v.detected_by, core::DetectedBy::kNone);
  const core::JozaStats stats = joza.stats();
  EXPECT_EQ(stats.attacks_detected, 0u);
  EXPECT_EQ(stats.pti_failures, 1u);
  EXPECT_EQ(stats.degraded_checks, 1u);
  EXPECT_EQ(stats.degraded_blocks, 1u);
}

// --- Malformed-frame hardening ----------------------------------------------
// Fuzz-style fixed cases: hostile or corrupt bytes on the pipe must come
// back as clean Status errors, never unbounded allocation or a hang.

TEST(FrameHardening, OversizedDeclaredLengthRejectedWithoutAllocation) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  // Header declares a ~2 GiB payload; nothing but the header is sent.
  const char header[5] = {'\xff', '\xff', '\xff', '\x7f',
                          static_cast<char>(MessageType::kAnalyzeRequest)};
  ASSERT_EQ(::write(pipe->second.get(), header, sizeof header),
            static_cast<ssize_t>(sizeof header));
  auto frame = ReadFrame(pipe->first.get(), /*max_payload=*/64u << 20);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameHardening, TruncatedPayloadIsCleanError) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  // Declares 100 payload bytes but delivers 3, then EOF.
  const char header[5] = {100, 0, 0, 0,
                          static_cast<char>(MessageType::kAnalyzeRequest)};
  ASSERT_EQ(::write(pipe->second.get(), header, sizeof header),
            static_cast<ssize_t>(sizeof header));
  ASSERT_EQ(::write(pipe->second.get(), "abc", 3), 3);
  pipe->second.Close();
  auto frame = ReadFrame(pipe->first.get());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameHardening, TruncatedHeaderIsCleanError) {
  auto pipe = MakePipe();
  ASSERT_TRUE(pipe.ok());
  ASSERT_EQ(::write(pipe->second.get(), "\x01\x00", 2), 2);
  pipe->second.Close();
  auto frame = ReadFrame(pipe->first.get());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(FrameHardening, DecodeVerdictGarbageRejected) {
  EXPECT_FALSE(DecodeVerdict("").ok());
  EXPECT_FALSE(DecodeVerdict("\x01").ok());          // flag, then truncated
  EXPECT_FALSE(DecodeVerdict("\x01\x02\x03").ok());  // mid-u32 truncation
  // Valid counters but a string-table count with no string bytes behind it.
  std::string payload;
  payload.push_back(1);
  for (int i = 0; i < 3; ++i) payload += std::string(4, '\0');
  payload += std::string("\xff\xff\xff\xff", 4);  // 4 billion strings
  EXPECT_FALSE(DecodeVerdict(payload).ok());
}

TEST(FrameHardening, DecodeStringListAbsurdCountRejected) {
  // Count = 0xffffffff with an empty remainder: must fail before reserving.
  EXPECT_FALSE(DecodeStringList(std::string("\xff\xff\xff\xff", 4)).ok());
  // Count that the remaining bytes cannot possibly hold.
  std::string payload("\x10\x00\x00\x00", 4);
  payload += "junk";
  auto r = DecodeStringList(payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(FrameHardening, DaemonSurvivesOversizedFrameFromClient) {
  // The serving loop rejects the frame and exits cleanly (stream is
  // desynchronized past repair), rather than allocating or crashing.
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::size_t served = 0;
  std::thread server([&served, rfd = req->first.get(),
                      wfd = resp->second.get()] {
    served = ServePtiDaemon(rfd, wfd, OneFragment());
  });
  const char header[5] = {'\xff', '\xff', '\xff', '\x7f',
                          static_cast<char>(MessageType::kAnalyzeRequest)};
  ASSERT_EQ(::write(req->second.get(), header, sizeof header),
            static_cast<ssize_t>(sizeof header));
  req->second.Close();
  server.join();
  EXPECT_EQ(served, 0u);
}

TEST(DaemonErrors, ShutdownThenReuseRespawns) {
  DaemonClient client(DaemonClient::Mode::kPersistent, OneFragment());
  ASSERT_TRUE(client.Ping().ok());
  client.Shutdown();
  // The client lazily re-forks a fresh daemon on next use.
  ASSERT_TRUE(client.Ping().ok());
  auto v = client.Analyze("SELECT 1");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->attack_detected);
}

}  // namespace
}  // namespace joza::ipc
