// IPC failure-path behaviour: protocol errors are answered, broken pipes
// surface as status errors, and the Joza adapter fails closed.
#include <gtest/gtest.h>

#include <thread>

#include "core/joza.h"
#include "ipc/daemon.h"
#include "ipc/framing.h"

namespace joza::ipc {
namespace {

php::FragmentSet OneFragment() {
  php::FragmentSet set;
  set.AddRaw("SELECT 1");
  return set;
}

TEST(DaemonErrors, UnknownMessageTypeAnswered) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, OneFragment());
  });
  // kPong is not a valid request type.
  ASSERT_TRUE(WriteFrame(req->second.get(), {MessageType::kPong, ""}).ok());
  auto r = ReadFrame(resp->first.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, MessageType::kError);
  // The daemon keeps serving after a protocol error.
  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kAnalyzeRequest, "SELECT 1"})
          .ok());
  auto ok = ReadFrame(resp->first.get());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->type, MessageType::kAnalyzeResponse);
  req->second.Close();
  server.join();
}

TEST(DaemonErrors, MalformedAddFragmentsAnswered) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::thread server([rfd = req->first.get(), wfd = resp->second.get()] {
    ServePtiDaemon(rfd, wfd, OneFragment());
  });
  ASSERT_TRUE(
      WriteFrame(req->second.get(), {MessageType::kAddFragments, "\x01"})
          .ok());
  auto r = ReadFrame(resp->first.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->type, MessageType::kError);
  req->second.Close();
  server.join();
}

TEST(DaemonErrors, ServerCountsServedQueries) {
  auto req = MakePipe();
  auto resp = MakePipe();
  ASSERT_TRUE(req.ok() && resp.ok());
  std::size_t served = 0;
  std::thread server([&served, rfd = req->first.get(),
                      wfd = resp->second.get()] {
    served = ServePtiDaemon(rfd, wfd, OneFragment());
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(WriteFrame(req->second.get(),
                           {MessageType::kAnalyzeRequest, "SELECT 1"})
                    .ok());
    ASSERT_TRUE(ReadFrame(resp->first.get()).ok());
  }
  req->second.Close();
  server.join();
  EXPECT_EQ(served, 5u);
}

TEST(DaemonErrors, JozaAdapterFailsClosedOnDeadDaemon) {
  // Build a backend from a client, then make its pipes unusable by
  // shutting the daemon down while keeping the adapter alive.
  auto client = std::make_unique<DaemonClient>(
      DaemonClient::Mode::kPersistent, OneFragment());
  ASSERT_TRUE(client->Ping().ok());

  core::JozaConfig cfg;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  cfg.enable_nti = false;
  core::Joza joza(OneFragment(), cfg);
  joza.SetPtiBackend(client->AsPtiBackend());

  // Healthy: the trivially-covered query is safe.
  EXPECT_FALSE(joza.Check("SELECT 1", {}).attack);

  // Shutdown closes the pipes; the next spawn succeeds (the client
  // re-forks) so simulate a hard failure instead: move-close the pipes by
  // shutting down and then poisoning with a second shutdown is not enough.
  // Destroying the client would leave a dangling backend, so instead test
  // the adapter's contract directly: a backend whose Analyze errors must
  // report an attack (fail closed).
  joza.SetPtiBackend([](std::string_view, const std::vector<sql::Token>&) {
    pti::PtiResult r;
    r.attack_detected = true;  // what AsPtiBackend returns on RPC failure
    return r;
  });
  EXPECT_TRUE(joza.Check("SELECT 1", {}).attack);
}

TEST(DaemonErrors, ShutdownThenReuseRespawns) {
  DaemonClient client(DaemonClient::Mode::kPersistent, OneFragment());
  ASSERT_TRUE(client.Ping().ok());
  client.Shutdown();
  // The client lazily re-forks a fresh daemon on next use.
  ASSERT_TRUE(client.Ping().ok());
  auto v = client.Analyze("SELECT 1");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->attack_detected);
}

}  // namespace
}  // namespace joza::ipc
