// Soundness properties of the structure cache: data-only variation never
// changes the hash (so benign dynamic queries hit), while grafting SQL
// onto a cached-safe template always changes it (so a hit is never granted
// to an injected query).
#include <gtest/gtest.h>

#include "attack/catalog.h"
#include "attack/exploit.h"
#include "core/joza.h"
#include "pti/pti.h"
#include "sqlparse/structure.h"
#include "util/rng.h"

namespace joza::core {
namespace {

class StructureCacheProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StructureCacheProperty, DataVariantsShareOneHash) {
  Rng rng(GetParam());
  struct Template {
    const char* prefix;
    bool quoted;
    const char* suffix;
  };
  const Template templates[] = {
      {"SELECT id, title FROM wp_posts WHERE id = ", false, ""},
      {"SELECT id FROM wp_posts WHERE title = ", true, " LIMIT 10"},
      {"INSERT INTO wp_comments (id, post_id, author, body) "
       "VALUES (1, 2, 'anon', ",
       true, ")"},
      {"UPDATE wp_posts SET views = views + 1 WHERE id = ", false, ""},
  };
  for (const Template& t : templates) {
    std::optional<std::uint64_t> expected;
    for (int i = 0; i < 25; ++i) {
      // Non-negative numbers only: "-42" lexes as unary minus + literal,
      // which is a (correctly) different structure from "42".
      std::string value = t.quoted
                              ? "'" + rng.NextToken(1 + rng.NextBelow(20)) + "'"
                              : std::to_string(rng.NextInRange(0, 9999));
      auto h = sql::StructureHashOf(std::string(t.prefix) + value + t.suffix);
      ASSERT_TRUE(h.ok());
      if (!expected) {
        expected = h.value();
      } else {
        EXPECT_EQ(h.value(), *expected) << t.prefix;
      }
    }
  }
}

TEST_P(StructureCacheProperty, InjectionAlwaysChangesHash) {
  Rng rng(GetParam() * 13 + 7);
  const char* injections[] = {
      " OR 1=1",
      " UNION SELECT pass FROM wp_users",
      " AND SLEEP(2)",
      " OR (SELECT COUNT(*) FROM wp_users) > 0",
  };
  for (int i = 0; i < 25; ++i) {
    std::string benign = "SELECT id, title FROM wp_posts WHERE id = " +
                         std::to_string(rng.NextInRange(1, 9999));
    auto h_benign = sql::StructureHashOf(benign);
    ASSERT_TRUE(h_benign.ok());
    for (const char* inj : injections) {
      auto h_attack = sql::StructureHashOf(benign + inj);
      ASSERT_TRUE(h_attack.ok());
      EXPECT_NE(h_attack.value(), h_benign.value()) << inj;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructureCacheProperty,
                         ::testing::Values(1, 2, 3, 4));

// End-to-end: after the structure cache is warmed with benign traffic on
// every catalogued endpoint, injected variants still get caught.
TEST(StructureCacheEndToEnd, WarmCacheGrantsNoAmnesty) {
  auto app = attack::MakeTestbed();
  Joza joza = Joza::Install(*app);
  app->SetQueryGate(joza.MakeGate());
  // Warm: benign request to every endpoint.
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    app->Handle(http::Request::Get(p.route, {{p.param, "1"}}));
  }
  EXPECT_EQ(joza.stats().attacks_detected, 0u);
  // Attack: the original exploits, now against warm caches.
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    attack::Exploit e = attack::OriginalExploit(p);
    EXPECT_FALSE(attack::ExploitSucceeds(*app, p, e)) << p.name;
  }
  app->SetQueryGate(nullptr);
}

// Benign-per-endpoint PTI coverage: with the full testbed vocabulary,
// every endpoint's benign query must be PTI-trusted (per-plugin FP check).
TEST(PerEndpointCoverage, BenignQueriesFullyTrusted) {
  auto app = attack::MakeTestbed();
  pti::PtiAnalyzer pti(php::FragmentSet::FromSources(app->sources()));
  for (const attack::PluginSpec& p : attack::PluginCatalog()) {
    for (const char* value : {"1", "42", "0"}) {
      const std::string q = attack::QueryFor(p, value);
      auto r = pti.Analyze(q);
      EXPECT_FALSE(r.attack_detected) << p.name << " query: " << q;
    }
  }
}

}  // namespace
}  // namespace joza::core
