#include "util/codec.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace joza {
namespace {

TEST(Base64, KnownVectors) {
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeKnownVectors) {
  auto r = Base64Decode("Zm9vYmFy");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "foobar");
  r = Base64Decode("Zg==");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "f");
}

TEST(Base64, RejectsMalformed) {
  EXPECT_FALSE(Base64Decode("abc").ok());      // bad length
  EXPECT_FALSE(Base64Decode("ab=c").ok());     // data after padding
  EXPECT_FALSE(Base64Decode("a&==").ok());     // invalid character
  EXPECT_FALSE(Base64Decode("=abc").ok());     // misplaced padding
}

TEST(Base64, RoundTripProperty) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    std::string data;
    std::size_t len = rng.NextBelow(64);
    for (std::size_t j = 0; j < len; ++j) {
      data.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    auto decoded = Base64Decode(Base64Encode(data));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), data);
  }
}

TEST(Url, EncodeBasics) {
  EXPECT_EQ(UrlEncode("a b"), "a%20b");
  EXPECT_EQ(UrlEncode("1' OR 1=1"), "1%27%20OR%201%3D1");
  EXPECT_EQ(UrlEncode("safe-._~AZaz09"), "safe-._~AZaz09");
}

TEST(Url, DecodeBasics) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("1%27%20OR%201%3D1"), "1' OR 1=1");
  // Malformed escapes pass through.
  EXPECT_EQ(UrlDecode("100%"), "100%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
}

TEST(Url, RoundTripProperty) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string data;
    std::size_t len = rng.NextBelow(48);
    for (std::size_t j = 0; j < len; ++j) {
      data.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    EXPECT_EQ(UrlDecode(UrlEncode(data)), data);
  }
}

}  // namespace
}  // namespace joza
