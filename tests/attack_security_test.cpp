// The testbed-wide security assertions behind Tables II and IV: per-variant
// detection by NTI alone, PTI alone, and the Joza hybrid.
#include <gtest/gtest.h>

#include "attack/catalog.h"
#include "attack/evasion.h"
#include "attack/exploit.h"
#include "attack/payload_gen.h"
#include "attack/workload.h"
#include "core/joza.h"
#include "nti/nti.h"
#include "pti/pti.h"

namespace joza::attack {
namespace {

class SecurityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = MakeTestbed();
    fragments_ = php::FragmentSet::FromSources(app_->sources());
    pti_ = std::make_unique<pti::PtiAnalyzer>(fragments_);
  }

  bool NtiDetects(const PluginSpec& p, const std::string& payload) {
    return nti_
        .Analyze(QueryFor(p, payload), InputsFor(p, payload))
        .attack_detected;
  }
  bool PtiDetects(const PluginSpec& p, const std::string& payload) {
    return pti_->Analyze(QueryFor(p, payload)).attack_detected;
  }
  bool NtiDetectsExploit(const PluginSpec& p, const Exploit& e) {
    return NtiDetects(p, e.payload) ||
           (e.is_probe_pair && NtiDetects(p, e.false_payload));
  }
  bool PtiDetectsExploit(const PluginSpec& p, const Exploit& e) {
    return PtiDetects(p, e.payload) ||
           (e.is_probe_pair && PtiDetects(p, e.false_payload));
  }

  std::unique_ptr<webapp::Application> app_;
  php::FragmentSet fragments_;
  std::unique_ptr<pti::PtiAnalyzer> pti_;
  nti::NtiAnalyzer nti_;
};

// --- Table II: baseline effectiveness ----------------------------------------

TEST_F(SecurityFixture, Baseline_NtiDetects49Of50) {
  int detected = 0;
  std::string missed;
  for (const PluginSpec* p : TestbedPlugins()) {
    if (NtiDetectsExploit(*p, OriginalExploit(*p))) {
      ++detected;
    } else {
      missed += p->name + ";";
    }
  }
  EXPECT_EQ(detected, 49);
  EXPECT_EQ(missed, "AdRotate;") << "only the base64 plugin evades NTI";
}

TEST_F(SecurityFixture, Baseline_PtiDetects50Of50) {
  for (const PluginSpec* p : TestbedPlugins()) {
    EXPECT_TRUE(PtiDetectsExploit(*p, OriginalExploit(*p))) << p->name;
  }
}

TEST_F(SecurityFixture, Baseline_CaseStudiesDetected) {
  for (const PluginSpec* p : CaseStudyApps()) {
    Exploit e = OriginalExploit(*p);
    EXPECT_TRUE(NtiDetectsExploit(*p, e)) << p->name;
    EXPECT_TRUE(PtiDetectsExploit(*p, e)) << p->name;
  }
}

// --- Section V-A: NTI evasion -------------------------------------------------

TEST_F(SecurityFixture, NtiEvasion_51Of53Bypass) {
  int bypassed = 0;
  std::vector<std::string> resistant;
  for (const PluginSpec& p : PluginCatalog()) {
    Exploit original = OriginalExploit(p);
    NtiMutation m = MutateForNtiEvasion(p, original, nti_.config());
    if (!m.possible) {
      resistant.push_back(p.name);
      continue;
    }
    // The mutated exploit must actually evade NTI...
    EXPECT_FALSE(NtiDetectsExploit(p, m.exploit))
        << p.name << " via " << m.technique;
    // ...and still work end-to-end.
    EXPECT_TRUE(ExploitSucceeds(*app_, p, m.exploit))
        << p.name << " via " << m.technique;
    ++bypassed;
  }
  EXPECT_EQ(bypassed, 51);
  ASSERT_EQ(resistant.size(), 2u);
  EXPECT_EQ(resistant[0], "Profiles");
  EXPECT_EQ(resistant[1], "PureHTML");
}

TEST_F(SecurityFixture, NtiEvasion_MutatedStillCaughtByPti) {
  // The hybrid's first leg: every NTI-evading mutation is PTI-visible.
  for (const PluginSpec& p : PluginCatalog()) {
    NtiMutation m = MutateForNtiEvasion(p, OriginalExploit(p), nti_.config());
    if (!m.possible) continue;
    EXPECT_TRUE(PtiDetectsExploit(p, m.exploit)) << p.name;
  }
}

// --- Section V-A: PTI evasion (Taintless) -------------------------------------

TEST_F(SecurityFixture, Taintless_13Of50Testbed) {
  int evaded = 0;
  for (const PluginSpec* p : TestbedPlugins()) {
    TaintlessResult r = RunTaintless(*p, *pti_, *app_);
    if (!r.success) continue;
    ++evaded;
    // Double-check the tool's claim.
    EXPECT_FALSE(PtiDetectsExploit(*p, r.exploit))
        << p->name << " strategy " << r.strategy;
    EXPECT_TRUE(ExploitSucceeds(*app_, *p, r.exploit)) << p->name;
  }
  EXPECT_EQ(evaded, 13);
}

TEST_F(SecurityFixture, Taintless_OsCommerceOnlyCaseStudy) {
  for (const PluginSpec* p : CaseStudyApps()) {
    TaintlessResult r = RunTaintless(*p, *pti_, *app_);
    EXPECT_EQ(r.success, p->name == "osCommerce") << p->name;
  }
}

TEST_F(SecurityFixture, Taintless_AdaptedStillCaughtByNti) {
  // The hybrid's second leg: Taintless outputs reach the query verbatim
  // (they are built quote-free / transformation-free), so NTI sees them.
  for (const PluginSpec& p : PluginCatalog()) {
    TaintlessResult r = RunTaintless(p, *pti_, *app_);
    if (!r.success) continue;
    if (p.name == "AdRotate") continue;  // base64 blinds NTI by design
    EXPECT_TRUE(NtiDetectsExploit(p, r.exploit)) << p.name;
  }
}

// --- Table IV: the hybrid ------------------------------------------------------

TEST_F(SecurityFixture, Joza_BlocksEveryVariantEndToEnd) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());

  for (const PluginSpec& p : PluginCatalog()) {
    const Exploit original = OriginalExploit(p);
    EXPECT_FALSE(ExploitSucceeds(*app_, p, original))
        << p.name << " original must be blocked";

    NtiMutation m = MutateForNtiEvasion(p, original, nti_.config());
    if (m.possible) {
      EXPECT_FALSE(ExploitSucceeds(*app_, p, m.exploit))
          << p.name << " NTI-mutated must be blocked";
    }

    TaintlessResult t = RunTaintless(p, *pti_, *app_);
    if (t.success) {
      // Taintless succeeded against PTI alone; the hybrid still blocks.
      EXPECT_FALSE(ExploitSucceeds(*app_, p, t.exploit))
          << p.name << " Taintless-adapted must be blocked";
    }
  }
  app_->SetQueryGate(nullptr);
}

TEST_F(SecurityFixture, Joza_BenignWorkloadZeroFalsePositives) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  std::size_t blocked = 0;
  auto run = [&](const std::vector<WorkloadRequest>& reqs) {
    for (const auto& wr : reqs) {
      app_->Handle(wr.request);
      blocked += app_->last_stats().queries_blocked;
    }
  };
  run(MakeCrawlWorkload(120, 1));
  run(MakeCommentWorkload(60, 2));
  run(MakeSearchWorkload(60, 3));
  EXPECT_EQ(blocked, 0u);
  EXPECT_EQ(joza.stats().attacks_detected, 0u);
  app_->SetQueryGate(nullptr);
}

// --- Table II: SQLMap-generated payloads --------------------------------------

TEST_F(SecurityFixture, SqlmapVariants_AllDetectedByBoth) {
  // One plugin per attack class, ~40 valid payloads each (the paper's
  // SQLMap experiment). Both analyses must catch all of them.
  const char* chosen[] = {"A to Z Category Listing", "Eventify", "MyStat",
                          "Mingle Forum"};
  for (const char* name : chosen) {
    const PluginSpec* plugin = nullptr;
    for (const PluginSpec& p : PluginCatalog()) {
      if (p.name == name) plugin = &p;
    }
    ASSERT_NE(plugin, nullptr) << name;
    auto variants = GenerateSqlmapPayloads(*plugin, 40, 99);
    ASSERT_EQ(variants.size(), 40u) << name;
    for (const Exploit& e : variants) {
      EXPECT_TRUE(ExploitSucceeds(*app_, *plugin, e))
          << name << ": " << e.payload;
      EXPECT_TRUE(NtiDetectsExploit(*plugin, e)) << name << ": " << e.payload;
      EXPECT_TRUE(PtiDetectsExploit(*plugin, e)) << name << ": " << e.payload;
    }
  }
}

}  // namespace
}  // namespace joza::attack
