#include "pti/pti.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace joza::pti {
namespace {

php::FragmentSet MakeSet(std::initializer_list<const char*> fragments) {
  php::FragmentSet set;
  for (const char* f : fragments) set.AddRaw(f);
  return set;
}

// Fragment set for the paper's Section III-B example program.
php::FragmentSet PaperFragments() {
  return MakeSet({"SELECT * FROM records WHERE ID=", " LIMIT 5"});
}

// --- Figure 3 of the paper ---------------------------------------------------

TEST(Pti, Figure3A_BenignQuerySafe) {
  PtiAnalyzer pti(PaperFragments());
  auto r = pti.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5");
  EXPECT_FALSE(r.attack_detected)
      << "every critical token comes from a fragment";
}

TEST(Pti, Figure3B_UnionAttackDetected) {
  PtiAnalyzer pti(PaperFragments());
  auto r = pti.Analyze(
      "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");
  EXPECT_TRUE(r.attack_detected);
  // UNION, the inner SELECT and username() are untrusted.
  bool union_untrusted = false, fn_untrusted = false;
  int selects_untrusted = 0;
  for (const auto& t : r.untrusted_critical_tokens) {
    if (EqualsIgnoreCase(t.text, "UNION")) union_untrusted = true;
    if (EqualsIgnoreCase(t.text, "username")) fn_untrusted = true;
    if (EqualsIgnoreCase(t.text, "SELECT")) ++selects_untrusted;
  }
  EXPECT_TRUE(union_untrusted);
  EXPECT_TRUE(fn_untrusted);
  EXPECT_EQ(selects_untrusted, 1) << "only the injected SELECT is untrusted";
}

TEST(Pti, Figure3C_RichVocabularyMissesTautology) {
  // Part C: if the application itself contains OR and =, the tautology's
  // critical tokens are all trusted — PTI misses the attack.
  auto set = PaperFragments();
  set.AddRaw("OR");
  set.AddRaw("=");
  PtiAnalyzer pti(std::move(set));
  auto r = pti.Analyze("SELECT * FROM records WHERE ID=1 OR 1 = 1 LIMIT 5");
  EXPECT_FALSE(r.attack_detected)
      << "the paper's PTI weakness: application-dependent attack surface";
}

// --- Core semantics ----------------------------------------------------------

TEST(Pti, CriticalTokenMustBeInsideSingleFragment) {
  // "O" and "R" fragments must not combine into a trusted OR.
  auto set = MakeSet({"SELECT * FROM t WHERE a=", "O) (SELECT", "R LIMIT"});
  // Those composite fragments contain SQL tokens so they are retained; now
  // craft a query where OR spans a fragment boundary.
  PtiAnalyzer pti(std::move(set));
  auto r = pti.Analyze("SELECT * FROM t WHERE a=1 OR 1");
  EXPECT_TRUE(r.attack_detected);
}

TEST(Pti, CommentsMustComeWholeFromOneFragment) {
  auto set = MakeSet({"SELECT * FROM t WHERE a=", "/* safe", "block */"});
  PtiAnalyzer pti(std::move(set));
  // The comment is assembled from two fragments -> untrusted.
  auto r = pti.Analyze("SELECT * FROM t WHERE a=1 /* safe block */");
  EXPECT_TRUE(r.attack_detected);
  bool comment_flagged = false;
  for (const auto& t : r.untrusted_critical_tokens) {
    if (t.kind == sql::TokenKind::kComment) comment_flagged = true;
  }
  EXPECT_TRUE(comment_flagged);
}

TEST(Pti, WholeCommentFragmentTrusted) {
  auto set = MakeSet({"SELECT * FROM t WHERE a=", "/* cache hint */"});
  PtiAnalyzer pti(std::move(set));
  auto r = pti.Analyze("SELECT * FROM t WHERE a=1 /* cache hint */");
  EXPECT_FALSE(r.attack_detected);
}

TEST(Pti, CaseSensitiveMatching) {
  // Fragments are matched byte-exactly: "select" != "SELECT".
  auto set = MakeSet({"SELECT * FROM t WHERE a="});
  PtiAnalyzer pti(std::move(set));
  auto r = pti.Analyze("select * from t where a=1");
  EXPECT_TRUE(r.attack_detected);
}

TEST(Pti, InputIndependenceSecondOrder) {
  // Second-order attack: the payload arrives via the database, not HTTP.
  // PTI doesn't care where the query text came from — only whether its
  // critical tokens originate from program fragments.
  PtiAnalyzer pti(PaperFragments());
  std::string cached_payload = "-1 UNION SELECT pass FROM users";
  auto r = pti.Analyze("SELECT * FROM records WHERE ID=" + cached_payload +
                       " LIMIT 5");
  EXPECT_TRUE(r.attack_detected);
}

TEST(Pti, QueryWithNoCriticalTokensSafe) {
  PtiAnalyzer pti(MakeSet({"SELECT"}));
  auto r = pti.Analyze("foo bar 42");
  EXPECT_FALSE(r.attack_detected);
}

TEST(Pti, EmptyFragmentSetFlagsEverything) {
  PtiAnalyzer pti{php::FragmentSet{}};
  auto r = pti.Analyze("SELECT 1");
  EXPECT_TRUE(r.attack_detected);
}

TEST(Pti, NaiveAndAhoAgree) {
  auto make_set = [] {
    return MakeSet({"SELECT * FROM records WHERE ID=", " LIMIT 5", "OR",
                    " ORDER BY id DESC", "GROUP BY"});
  };
  PtiConfig aho;
  aho.use_aho_corasick = true;
  PtiConfig naive;
  naive.use_aho_corasick = false;
  PtiAnalyzer a(make_set(), aho);
  PtiAnalyzer b(make_set(), naive);
  const char* queries[] = {
      "SELECT * FROM records WHERE ID=5 LIMIT 5",
      "SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5",
      "SELECT * FROM records WHERE ID=1 OR 2 LIMIT 5",
      "DROP TABLE users",
      "SELECT * FROM records WHERE ID=3 ORDER BY id DESC",
  };
  for (const char* q : queries) {
    EXPECT_EQ(a.Analyze(q).attack_detected, b.Analyze(q).attack_detected)
        << q;
  }
}

TEST(Pti, NaiveParseFirstEarlyExit) {
  // With parse-first, a benign query stops scanning once all critical
  // tokens are trusted; an attack query scans the full set.
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM records WHERE ID=");  // covers the benign query
  for (int i = 0; i < 50; ++i) {
    set.AddRaw("SELECT something_" + std::to_string(i) + " FROM");
  }
  PtiConfig cfg;
  cfg.use_aho_corasick = false;
  cfg.parse_first = true;
  cfg.mru_size = 0;
  PtiAnalyzer pti(std::move(set), cfg);
  auto benign = pti.Analyze("SELECT * FROM records WHERE ID=5");
  auto attack = pti.Analyze("SELECT * FROM records WHERE ID=5 OR 1=1");
  EXPECT_FALSE(benign.attack_detected);
  EXPECT_TRUE(attack.attack_detected);
  EXPECT_LT(benign.fragments_scanned, attack.fragments_scanned);
  EXPECT_EQ(attack.fragments_scanned, 51u);
}

TEST(Pti, MruMovesHotFragmentsForward) {
  php::FragmentSet set;
  for (int i = 0; i < 40; ++i) {
    set.AddRaw("SELECT col_" + std::to_string(i) + " FROM table_x WHERE");
  }
  set.AddRaw("SELECT * FROM hot_table WHERE id=");  // index 40, scanned last
  PtiConfig cfg;
  cfg.use_aho_corasick = false;
  cfg.parse_first = true;
  cfg.mru_size = 8;
  PtiAnalyzer pti(std::move(set), cfg);
  auto first = pti.Analyze("SELECT * FROM hot_table WHERE id=1");
  auto second = pti.Analyze("SELECT * FROM hot_table WHERE id=2");
  EXPECT_FALSE(first.attack_detected);
  EXPECT_FALSE(second.attack_detected);
  EXPECT_GT(first.fragments_scanned, second.fragments_scanned)
      << "the second identical-workload query must hit the MRU front";
  EXPECT_EQ(second.fragments_scanned, 1u);
}

TEST(Pti, AddFragmentsRebuildIndex) {
  PtiAnalyzer pti(MakeSet({"SELECT a FROM t"}));
  auto r = pti.Analyze("SELECT a FROM t WHERE b = 1");
  EXPECT_TRUE(r.attack_detected);  // WHERE/= not yet trusted
  pti.AddFragments({{"plugin2.php", "$q = \" WHERE b = \";\n"}});
  r = pti.Analyze("SELECT a FROM t WHERE b = 1");
  EXPECT_FALSE(r.attack_detected);
}

TEST(Pti, PositiveSpansReported) {
  PtiAnalyzer pti(PaperFragments());
  auto r = pti.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5");
  EXPECT_GE(r.positive_spans.size(), 2u);
  EXPECT_GE(r.hits, 2u);
}

}  // namespace
}  // namespace joza::pti
