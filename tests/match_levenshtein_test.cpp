#include "match/levenshtein.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/rng.h"

namespace joza::match {
namespace {

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(LevenshteinFull("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinFull("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinFull("", ""), 0u);
  EXPECT_EQ(LevenshteinFull("abc", ""), 3u);
  EXPECT_EQ(LevenshteinFull("", "abc"), 3u);
  EXPECT_EQ(LevenshteinFull("same", "same"), 0u);
}

TEST(Levenshtein, MagicQuotesDistance) {
  // The NTI evasion math from the paper: each escaped quote adds one
  // backslash, i.e. one unit of edit distance.
  std::string original = "-1' OR '1'='1";
  std::string escaped = "-1\\' OR \\'1\\'=\\'1";
  EXPECT_EQ(LevenshteinFull(original, escaped), 4u);  // four quotes escaped
}

struct LevCase {
  std::string a, b;
};

class LevenshteinVariantEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

// Property: all three implementations agree on random strings.
TEST_P(LevenshteinVariantEquivalence, AllVariantsAgree) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.NextToken(rng.NextBelow(30));
    std::string b = rng.NextToken(rng.NextBelow(30));
    const std::size_t full = LevenshteinFull(a, b);
    EXPECT_EQ(LevenshteinTwoRow(a, b), full) << a << " / " << b;
    const std::size_t band = LevenshteinBanded(a, b, full);
    EXPECT_EQ(band, full) << a << " / " << b;
  }
}

// Property: symmetry d(a,b) == d(b,a).
TEST_P(LevenshteinVariantEquivalence, Symmetry) {
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.NextToken(rng.NextBelow(24));
    std::string b = rng.NextToken(rng.NextBelow(24));
    EXPECT_EQ(LevenshteinTwoRow(a, b), LevenshteinTwoRow(b, a));
  }
}

// Property: triangle inequality d(a,c) <= d(a,b) + d(b,c).
TEST_P(LevenshteinVariantEquivalence, TriangleInequality) {
  Rng rng(GetParam() * 131 + 17);
  for (int i = 0; i < 30; ++i) {
    std::string a = rng.NextToken(rng.NextBelow(20));
    std::string b = rng.NextToken(rng.NextBelow(20));
    std::string c = rng.NextToken(rng.NextBelow(20));
    EXPECT_LE(LevenshteinTwoRow(a, c),
              LevenshteinTwoRow(a, b) + LevenshteinTwoRow(b, c));
  }
}

// Property: bounds |len(a)-len(b)| <= d <= max(len).
TEST_P(LevenshteinVariantEquivalence, DistanceBounds) {
  Rng rng(GetParam() * 733 + 3);
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.NextToken(rng.NextBelow(32));
    std::string b = rng.NextToken(rng.NextBelow(32));
    std::size_t d = LevenshteinTwoRow(a, b);
    std::size_t lo = a.size() > b.size() ? a.size() - b.size()
                                         : b.size() - a.size();
    EXPECT_GE(d, lo);
    EXPECT_LE(d, std::max(a.size(), b.size()));
  }
}

// Property: single edit always yields distance exactly 1.
TEST_P(LevenshteinVariantEquivalence, SingleEditDistanceOne) {
  Rng rng(GetParam() * 97 + 1);
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.NextToken(10 + rng.NextBelow(20));
    std::string b = a;
    switch (rng.NextBelow(3)) {
      case 0:  // substitution with a char not in the alphabet position
        b[rng.NextBelow(b.size())] = 'Z';
        break;
      case 1:  // insertion
        b.insert(b.begin() + rng.NextBelow(b.size() + 1), 'Z');
        break;
      default:  // deletion
        b.erase(b.begin() + rng.NextBelow(b.size()));
        break;
    }
    if (a == b) continue;  // substitution may have been a no-op
    EXPECT_EQ(LevenshteinTwoRow(a, b), 1u) << a << " -> " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinVariantEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(LevenshteinBanded, ReportsExceededBound) {
  EXPECT_EQ(LevenshteinBanded("aaaaaaaaaa", "bbbbbbbbbb", 3), 4u);
  EXPECT_EQ(LevenshteinBanded("abc", "abcdefgh", 2), 3u);  // length gap > bound
}

TEST(LevenshteinBanded, ExactWithinBound) {
  EXPECT_EQ(LevenshteinBanded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(LevenshteinBanded("kitten", "sitting", 10), 3u);
  EXPECT_EQ(LevenshteinBanded("same", "same", 0), 0u);
}

}  // namespace
}  // namespace joza::match
