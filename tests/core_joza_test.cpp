#include "core/joza.h"

#include <gtest/gtest.h>

#include "sqlparse/lexer.h"

namespace joza::core {
namespace {

using http::Input;
using http::InputKind;

Input Get(std::string name, std::string value) {
  return Input{InputKind::kGet, std::move(name), std::move(value)};
}

php::FragmentSet RichFragments() {
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM records WHERE ID=");
  set.AddRaw(" LIMIT 5");
  set.AddRaw("OR");
  set.AddRaw("=");
  set.AddRaw(" AND ");
  return set;
}

// --- Figure 4: the complementary nature of NTI and PTI ----------------------

TEST(Hybrid, Figure4A_ShortPayloadEvadesPtiCaughtByNti) {
  // "1 OR 1 = 1": every critical token (OR, =) exists in the application's
  // fragments, so PTI misses it; NTI sees the verbatim input and flags it.
  Joza joza(RichFragments());
  auto v = joza.Check("SELECT * FROM records WHERE ID=1 OR 1 = 1 LIMIT 5",
                      {Get("id", "1 OR 1 = 1")});
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.detected_by, DetectedBy::kNti);
  EXPECT_FALSE(v.pti.attack_detected);
  EXPECT_TRUE(v.nti.attack_detected);
}

// Builds the paper's NTI-evasion payload: a base injection plus a comment
// block of `quotes` quote characters that the application's magic quotes
// will escape. Ratio = quotes / (len(base) + 2*quotes); quotes > 10 beats
// a 20% threshold for this base.
std::pair<std::string, std::string> EvasivePayload(int quotes) {
  std::string input = "-1 UNION SELECT username()/*";
  std::string in_query = input;
  for (int i = 0; i < quotes; ++i) {
    input += "'";
    in_query += "\\'";
  }
  input += "*/";
  in_query += "*/";
  return {input, in_query};
}

TEST(Hybrid, Figure4B_TransformedPayloadEvadesNtiCaughtByPti) {
  // Magic-quoted comment block pushes NTI's ratio over threshold; PTI sees
  // the UNION/SELECT tokens and the assembled comment as untrusted.
  Joza joza(RichFragments());
  auto [input, in_query] = EvasivePayload(15);
  std::string query =
      "SELECT * FROM records WHERE ID=" + in_query + " LIMIT 5";
  auto v = joza.Check(query, {Get("id", input)});
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.detected_by, DetectedBy::kPti);
  EXPECT_TRUE(v.pti.attack_detected);
  EXPECT_FALSE(v.nti.attack_detected);
}

TEST(Hybrid, BothDetectPlainAttack) {
  Joza joza(RichFragments());
  auto v = joza.Check(
      "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5",
      {Get("id", "-1 UNION SELECT username()")});
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(v.detected_by, DetectedBy::kBoth);
}

TEST(Hybrid, BenignSafe) {
  Joza joza(RichFragments());
  auto v = joza.Check("SELECT * FROM records WHERE ID=17 LIMIT 5",
                      {Get("id", "17")});
  EXPECT_FALSE(v.attack);
  EXPECT_EQ(v.detected_by, DetectedBy::kNone);
}

// --- Caches ------------------------------------------------------------------

TEST(Caches, QueryCacheSkipsPtiOnRepeat) {
  Joza joza(RichFragments());
  const std::string q = "SELECT * FROM records WHERE ID=17 LIMIT 5";
  auto v1 = joza.Check(q, {Get("id", "17")});
  EXPECT_FALSE(v1.attack);
  EXPECT_FALSE(v1.query_cache_hit);
  auto v2 = joza.Check(q, {Get("id", "17")});
  EXPECT_FALSE(v2.attack);
  EXPECT_TRUE(v2.query_cache_hit);
  EXPECT_EQ(joza.stats().pti_full_runs, 1u);
  EXPECT_EQ(joza.stats().nti_runs, 2u) << "NTI must run on every request";
}

TEST(Caches, StructureCacheCoversDataVariants) {
  Joza joza(RichFragments());
  auto v1 = joza.Check("SELECT * FROM records WHERE ID=17 LIMIT 5",
                       {Get("id", "17")});
  EXPECT_FALSE(v1.attack);
  // Different literal, same shape: structure hit, no PTI re-run.
  auto v2 = joza.Check("SELECT * FROM records WHERE ID=99 LIMIT 5",
                       {Get("id", "99")});
  EXPECT_FALSE(v2.attack);
  EXPECT_FALSE(v2.query_cache_hit);
  EXPECT_TRUE(v2.structure_cache_hit);
  EXPECT_EQ(joza.stats().pti_full_runs, 1u);
}

TEST(Caches, InjectedQueryNeverHitsCaches) {
  Joza joza(RichFragments());
  auto v1 = joza.Check("SELECT * FROM records WHERE ID=17 LIMIT 5",
                       {Get("id", "17")});
  EXPECT_FALSE(v1.attack);
  // Injection changes the AST shape: full PTI runs and still detects.
  auto v2 = joza.Check(
      "SELECT * FROM records WHERE ID=17 UNION SELECT username() LIMIT 5",
      {Get("id", "17 UNION SELECT username()")});
  EXPECT_TRUE(v2.attack);
  EXPECT_FALSE(v2.query_cache_hit);
  EXPECT_FALSE(v2.structure_cache_hit);
}

TEST(Caches, UnsafeQueriesNotCached) {
  Joza joza(RichFragments());
  const std::string q =
      "SELECT * FROM records WHERE ID=1 UNION SELECT username() LIMIT 5";
  auto v1 = joza.Check(q, {});
  EXPECT_TRUE(v1.attack);
  auto v2 = joza.Check(q, {});
  EXPECT_TRUE(v2.attack);
  EXPECT_FALSE(v2.query_cache_hit);
  EXPECT_EQ(joza.stats().pti_full_runs, 2u);
}

TEST(Caches, DisabledCachesAlwaysRunPti) {
  JozaConfig cfg;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  Joza joza(RichFragments(), cfg);
  const std::string q = "SELECT * FROM records WHERE ID=17 LIMIT 5";
  joza.Check(q, {});
  joza.Check(q, {});
  EXPECT_EQ(joza.stats().pti_full_runs, 2u);
}

TEST(Caches, UnparseableQueryBypassesStructureCache) {
  JozaConfig cfg;
  cfg.query_cache = false;  // isolate the structure cache
  Joza joza(RichFragments(), cfg);
  // A dynamically-mangled query that the parser rejects still gets PTI'd.
  const std::string q = "SELECT * FROM records WHERE ID= LIMIT";
  joza.Check(q, {});
  joza.Check(q, {});
  EXPECT_EQ(joza.stats().pti_full_runs, 2u);
  EXPECT_EQ(joza.stats().structure_cache_hits, 0u);
}

TEST(Caches, SourceUpdateInvalidates) {
  Joza joza(RichFragments());
  const std::string q = "SELECT * FROM records WHERE ID=17 LIMIT 5";
  joza.Check(q, {});
  joza.OnSourcesChanged({{"new_plugin.php", "$q = 'SELECT 1';"}});
  auto v = joza.Check(q, {});
  EXPECT_FALSE(v.query_cache_hit);
  EXPECT_FALSE(v.structure_cache_hit);
  EXPECT_EQ(joza.stats().pti_full_runs, 2u);
}

// --- Snapshot versioning -----------------------------------------------------

TEST(Snapshot, VersionBumpsAndIsStampedEverywhere) {
  Joza joza(RichFragments());
  EXPECT_EQ(joza.ruleset_version(), 0u);
  const std::string q = "SELECT * FROM records WHERE ID=5 LIMIT 5";
  auto v = joza.Check(q, {});
  EXPECT_EQ(v.ruleset_version, 0u);
  EXPECT_EQ(joza.stats().ruleset_version, 0u);
  EXPECT_EQ(joza.stats().ruleset_swaps, 0u);

  joza.OnSourcesChanged({{"new_plugin.php", "$q = 'SELECT 1';"}});
  EXPECT_EQ(joza.ruleset_version(), 1u);
  v = joza.Check(q, {});
  EXPECT_EQ(v.ruleset_version, 1u);
  const JozaStats stats = joza.stats();
  EXPECT_EQ(stats.ruleset_version, 1u);
  EXPECT_EQ(stats.ruleset_swaps, 1u);
}

TEST(Snapshot, ExactlyOneLexPerCheck) {
  // The single-pass pipeline lexes once per Check and threads the tokens
  // through structure hashing, parsing, NTI and PTI — cold, cached and
  // attack paths alike.
  Joza joza(RichFragments());
  const std::string q = "SELECT * FROM records WHERE ID=17 LIMIT 5";

  std::uint64_t before = sql::LexCallsForTest();
  joza.Check(q, {});  // cold: full PTI run
  EXPECT_EQ(sql::LexCallsForTest() - before, 1u);

  before = sql::LexCallsForTest();
  auto v = joza.Check(q, {});  // warm: query-cache hit
  EXPECT_TRUE(v.query_cache_hit);
  EXPECT_EQ(sql::LexCallsForTest() - before, 1u);

  before = sql::LexCallsForTest();
  v = joza.Check("SELECT * FROM records WHERE ID=1 UNION SELECT 9 LIMIT 5",
                 {});
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(sql::LexCallsForTest() - before, 1u);

  before = sql::LexCallsForTest();
  joza.Check("SELECT * FROM records WHERE ID= LIMIT", {});  // unparseable
  EXPECT_EQ(sql::LexCallsForTest() - before, 1u);
}

TEST(Snapshot, NoInputCopiesPerCheckRequest) {
  // The request-facing entry analyzes stored inputs as borrowed views;
  // materializing per-Check copies (the old AllInputs() path) is a
  // regression. Same counter idiom as ExactlyOneLexPerCheck.
  Joza joza(RichFragments());
  http::Request request = http::Request::Get(
      "/page", {{"id", "17"}, {"q", "search term"}});
  request.WithCookie("session", "abcdef123").WithHeader("user-agent", "Bot");

  std::uint64_t before = http::InputCopiesForTest();
  auto v = joza.CheckRequest("SELECT * FROM records WHERE ID=17 LIMIT 5",
                             request);
  EXPECT_FALSE(v.attack);
  v = joza.CheckRequest(
      "SELECT * FROM records WHERE ID=-1 UNION SELECT 9 LIMIT 5", request);
  EXPECT_TRUE(v.attack);
  EXPECT_EQ(http::InputCopiesForTest() - before, 0u);

  // The compatibility path still copies — the counter itself works.
  before = http::InputCopiesForTest();
  const auto all = request.AllInputs();
  EXPECT_EQ(http::InputCopiesForTest() - before, all.size());
}

// --- Component toggles -------------------------------------------------------

TEST(Toggles, NtiOnlyMissesFigure4B) {
  JozaConfig cfg;
  cfg.enable_pti = false;
  Joza joza(RichFragments(), cfg);
  auto [input, in_query] = EvasivePayload(15);
  std::string query =
      "SELECT * FROM records WHERE ID=" + in_query + " LIMIT 5";
  auto v = joza.Check(query, {Get("id", input)});
  EXPECT_FALSE(v.attack) << "NTI alone must miss the transformed payload";
}

TEST(Toggles, PtiOnlyMissesFigure4A) {
  JozaConfig cfg;
  cfg.enable_nti = false;
  Joza joza(RichFragments(), cfg);
  auto v = joza.Check("SELECT * FROM records WHERE ID=1 OR 1 = 1 LIMIT 5",
                      {Get("id", "1 OR 1 = 1")});
  EXPECT_FALSE(v.attack) << "PTI alone must miss the in-vocabulary payload";
}

// --- Gate integration --------------------------------------------------------

TEST(Gate, ProtectsWordpressApp) {
  auto app = webapp::MakeWordpressLikeApp(7);
  app->AddEndpoint(
      webapp::Endpoint{"/vuln", "id", {},
                       "SELECT title FROM wp_posts WHERE id = ", "", false,
                       webapp::ResponseMode::kData},
      "wp-content/plugins/vuln.php");
  auto joza = std::make_unique<Joza>(Joza::Install(*app));
  app->SetQueryGate(joza->MakeGate());

  // Benign request passes untouched.
  auto ok = app->Handle(http::Request::Get("/vuln", {{"id", "3"}}));
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("Post 3"), std::string::npos);

  // Exploit blocked with a blank page (termination policy).
  auto blocked = app->Handle(http::Request::Get(
      "/vuln", {{"id", "-1 UNION SELECT pass FROM wp_users"}}));
  EXPECT_EQ(blocked.status, 500);
  EXPECT_TRUE(blocked.body.empty());
  EXPECT_EQ(blocked.body.find("s3cr3t_hash"), std::string::npos);
}

TEST(Gate, ErrorVirtualizationKeepsAppAlive) {
  auto app = webapp::MakeWordpressLikeApp(7);
  app->AddEndpoint(
      webapp::Endpoint{"/vuln", "id", {},
                       "SELECT title FROM wp_posts WHERE id = ", "", false,
                       webapp::ResponseMode::kBlind},
      "wp-content/plugins/vuln.php");
  JozaConfig cfg;
  cfg.recovery = RecoveryPolicy::kErrorVirtualization;
  auto joza = std::make_unique<Joza>(Joza::Install(*app, cfg));
  app->SetQueryGate(joza->MakeGate());
  auto blocked = app->Handle(http::Request::Get(
      "/vuln", {{"id", "-1 UNION SELECT pass FROM wp_users"}}));
  // The app's own blind error page renders — not a blank termination.
  EXPECT_EQ(blocked.status, 500);
  EXPECT_NE(blocked.body.find("Error"), std::string::npos);
}

TEST(Gate, NoFalsePositivesOnCoreRoutes) {
  auto app = webapp::MakeWordpressLikeApp(7);
  auto joza = std::make_unique<Joza>(Joza::Install(*app));
  app->SetQueryGate(joza->MakeGate());
  const http::Request benign[] = {
      http::Request::Get("/", {}),
      http::Request::Get("/post", {{"id", "5"}}),
      http::Request::Get("/search", {{"s", "Post"}}),
      http::Request::Get("/search", {{"s", "it's a test"}}),
      http::Request::Post("/comment", {{"body", "I love this post!"}}),
      http::Request::Post("/comment", {{"body", "quote ' and \" chars"}}),
  };
  for (const auto& req : benign) {
    auto resp = app->Handle(req);
    EXPECT_NE(resp.status, 500) << req.path;
    EXPECT_EQ(app->last_stats().queries_blocked, 0u) << req.path;
  }
}

TEST(Gate, PluggablePtiBackend) {
  Joza joza(RichFragments());
  bool called = false;
  joza.SetPtiBackend([&called](std::string_view,
                               const std::vector<sql::Token>&,
                               util::Deadline) -> StatusOr<pti::PtiResult> {
    called = true;
    pti::PtiResult r;
    r.attack_detected = false;
    return r;
  });
  joza.Check("SELECT * FROM records WHERE ID=1 LIMIT 5", {});
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace joza::core
