#include "match/substring.h"

#include <gtest/gtest.h>

#include <string>

#include "match/levenshtein.h"
#include "util/rng.h"

namespace joza::match {
namespace {

TEST(Substring, ExactOccurrence) {
  auto m = BestSubstringMatch("SELECT * FROM data WHERE ID=-1 OR 1=1",
                              "-1 OR 1=1");
  EXPECT_EQ(m.distance, 0u);
  EXPECT_DOUBLE_EQ(m.ratio, 0.0);
  EXPECT_EQ(m.span.length(), 9u);
}

TEST(Substring, VerbatimInputPosition) {
  std::string q = "SELECT * FROM t WHERE name = 'alice'";
  auto m = BestSubstringMatch(q, "alice");
  EXPECT_EQ(m.distance, 0u);
  EXPECT_EQ(q.substr(m.span.begin, m.span.length()), "alice");
}

TEST(Substring, ApproximateMatch) {
  // Input transformed by magic quotes: distance equals added backslashes.
  std::string input = "x' OR '1'='1";
  std::string query = "SELECT * FROM t WHERE a = 'x\\' OR \\'1\\'=\\'1'";
  auto m = BestSubstringMatch(query, input);
  EXPECT_EQ(m.distance, 4u);
  EXPECT_GT(m.ratio, 0.0);
  EXPECT_LT(m.ratio, 0.5);
}

TEST(Substring, EmptyInputNeverMatches) {
  auto m = BestSubstringMatch("SELECT 1", "");
  EXPECT_DOUBLE_EQ(m.ratio, 1.0);
}

TEST(Substring, EmptyQuery) {
  auto m = BestSubstringMatch("", "abc");
  EXPECT_GE(m.distance, 3u);
}

TEST(Substring, NoSimilarityHighRatio) {
  auto m = BestSubstringMatch("SELECT * FROM zzzz", "qqqqqqqqqq");
  // Best possible alignment still needs many edits.
  EXPECT_GT(m.ratio, 0.5);
}

TEST(Substring, BoundedPrunes) {
  auto m = BestSubstringMatchBounded("SELECT * FROM zzzz", "qqqqqqqqqq", 2);
  EXPECT_EQ(m.distance, 3u);  // reported as bound + 1
  EXPECT_DOUBLE_EQ(m.ratio, 1.0);
}

TEST(Substring, BoundedFindsWithinBound) {
  std::string query = "SELECT * FROM t WHERE a = 'heIlo'";
  auto m = BestSubstringMatchBounded(query, "hello", 2);
  EXPECT_EQ(m.distance, 1u);
}

// Property: substring distance <= full edit distance against whole query.
TEST(SubstringProperty, NeverWorseThanGlobalDistance) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    std::string q = rng.NextToken(1 + rng.NextBelow(40));
    std::string p = rng.NextToken(1 + rng.NextBelow(15));
    auto m = BestSubstringMatch(q, p);
    EXPECT_LE(m.distance, LevenshteinTwoRow(q, p)) << q << " / " << p;
  }
}

// Property: the reported span really achieves the reported distance.
TEST(SubstringProperty, SpanAchievesDistance) {
  Rng rng(123);
  for (int i = 0; i < 100; ++i) {
    std::string q = rng.NextToken(1 + rng.NextBelow(40));
    std::string p = rng.NextToken(1 + rng.NextBelow(12));
    auto m = BestSubstringMatch(q, p);
    std::string sub = q.substr(m.span.begin, m.span.length());
    EXPECT_EQ(LevenshteinTwoRow(sub, p), m.distance) << q << " / " << p;
  }
}

// Property: the reported distance is minimal over all substrings
// (brute-force verification on short strings).
TEST(SubstringProperty, DistanceIsMinimal) {
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    std::string q = rng.NextToken(1 + rng.NextBelow(14));
    std::string p = rng.NextToken(1 + rng.NextBelow(8));
    auto m = BestSubstringMatch(q, p);
    std::size_t brute = q.size() + p.size();
    for (std::size_t b = 0; b <= q.size(); ++b) {
      for (std::size_t e = b; e <= q.size(); ++e) {
        brute = std::min(
            brute, LevenshteinTwoRow(std::string_view(q).substr(b, e - b), p));
      }
    }
    EXPECT_EQ(m.distance, brute) << q << " / " << p;
  }
}

// Property: embedding the pattern verbatim anywhere gives distance 0 with
// the right span.
TEST(SubstringProperty, EmbeddedPatternFound) {
  Rng rng(55);
  for (int i = 0; i < 100; ++i) {
    std::string pat = rng.NextToken(1 + rng.NextBelow(10));
    std::string pre = rng.NextToken(rng.NextBelow(20));
    std::string post = rng.NextToken(rng.NextBelow(20));
    std::string q = pre + pat + post;
    auto m = BestSubstringMatch(q, pat);
    EXPECT_EQ(m.distance, 0u);
    EXPECT_EQ(q.substr(m.span.begin, m.span.length()), pat);
  }
}

// Regression: ties on distance favour the longer span (lower ratio),
// regardless of which candidate appears first in the query. "abd" (one
// deletion) and "abXcd" (one insertion) are both distance 1 from "abcd";
// the length-5 span must win because 1/5 < 1/3.
TEST(Substring, TieOnDistanceFavoursLongerSpan) {
  for (const char* q : {"ii abd jj abXcd kk", "ii abXcd jj abd kk"}) {
    auto m = BestSubstringMatch(q, "abcd");
    EXPECT_EQ(m.distance, 1u) << q;
    EXPECT_EQ(std::string_view(q).substr(m.span.begin, m.span.length()),
              "abXcd")
        << q;
    EXPECT_DOUBLE_EQ(m.ratio, 0.2) << q;
  }
}

TEST(Substring, PaperFigure2CExample) {
  // Part C of Figure 2: escaped input inside a comment block drives the
  // difference ratio above the threshold.
  std::string input = "-1 OR 1=1/*'''''*/";
  // Magic quotes escape each quote; the query sees backslashes added.
  std::string query =
      "SELECT * FROM data WHERE ID=-1 OR 1=1/*\\'\\'\\'\\'\\'*/";
  auto m = BestSubstringMatch(query, input);
  EXPECT_EQ(m.distance, 5u);  // five added backslashes
  // diff ratio ~= 5/23; with enough quotes an attacker can push this over
  // any fixed threshold.
  EXPECT_GT(m.ratio, 0.20);
}

}  // namespace
}  // namespace joza::match
