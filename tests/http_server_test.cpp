// Full-stack-over-sockets tests: wire bytes in, Joza verdicts out.
#include "webapp/http_server.h"

#include <gtest/gtest.h>

#include "attack/catalog.h"
#include "core/joza.h"
#include "util/codec.h"

namespace joza::webapp {
namespace {

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = attack::MakeTestbed();
    server_ = std::make_unique<HttpServer>(*app_);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = port.value();
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<Application> app_;
  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

TEST_F(HttpServerTest, ServesFrontPage) {
  auto r = HttpGet(port_, "/");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("Post "), std::string::npos);
}

TEST_F(HttpServerTest, UrlDecodingThroughTheWire) {
  auto r = HttpGet(port_, "/search?s=Post%201");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
}

TEST_F(HttpServerTest, NotFound) {
  auto r = HttpGet(port_, "/missing");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
}

TEST_F(HttpServerTest, MalformedRequestGets400) {
  auto raw = FetchRaw(port_, "GARBAGE\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("400"), std::string::npos);
}

TEST_F(HttpServerTest, PostBodyReachesApplication) {
  const std::string body = "body=hello%20from%20the%20wire";
  auto raw = FetchRaw(
      port_, "POST /comment HTTP/1.0\r\nHost: x\r\nContent-Type: "
             "application/x-www-form-urlencoded\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\n\r\n" + body);
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("rows affected: 1"), std::string::npos);
}

TEST_F(HttpServerTest, ExploitOverWireLeaksWhenUnprotected) {
  auto r = HttpGet(port_,
                   "/plugins/community-events?uid=-1%20or%201%3D1");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->body.find("s3cr3t_hash"), std::string::npos);
}

TEST_F(HttpServerTest, JozaBlocksExploitOverWire) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  auto attack = HttpGet(port_,
                        "/plugins/community-events?uid=-1%20or%201%3D1");
  ASSERT_TRUE(attack.ok());
  EXPECT_EQ(attack->status, 500);
  EXPECT_TRUE(attack->body.empty());
  // Benign traffic still flows.
  auto ok = HttpGet(port_, "/plugins/community-events?uid=1");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  app_->SetQueryGate(nullptr);
}

TEST_F(HttpServerTest, CookieInputsVisibleToNti) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  // Attack delivered via cookie: the endpoint reads a GET param, so this
  // specific cookie is inert, but NTI must still have seen it (no crash,
  // no false block on the benign param).
  auto raw = FetchRaw(port_,
                      "GET /plugins/community-events?uid=1 HTTP/1.0\r\n"
                      "Host: x\r\nCookie: tracker=-1 or 1=1\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("200"), std::string::npos);
  app_->SetQueryGate(nullptr);
}

TEST_F(HttpServerTest, VirtualTimeHeaderExposesTimingChannel) {
  auto raw = FetchRaw(
      port_,
      "GET /plugins/advertiser?id=1%20and%20sleep(2) HTTP/1.0\r\n"
      "Host: x\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  // The double-blind plugin keeps its body constant; the simulated timing
  // channel is surfaced in a response header for test observability.
  EXPECT_NE(raw->find("X-Virtual-Time-Ms: 2000"), std::string::npos) << *raw;
}

TEST_F(HttpServerTest, ManySequentialConnections) {
  for (int i = 0; i < 25; ++i) {
    auto r = HttpGet(port_, "/post?id=" + std::to_string(i % 50 + 1));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r->status, 200);
  }
  EXPECT_GE(server_->requests_served(), 25u);
}

TEST_F(HttpServerTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
}

}  // namespace
}  // namespace joza::webapp
