// Full-stack-over-sockets tests: wire bytes in, Joza verdicts out.
// Also covers the non-blocking HTTP framing layer the event-driven gateway
// uses: the incremental RequestParser state machine, and the epoll server's
// partial-read / pipelining / partial-write resumption over real sockets.
#include "webapp/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "attack/catalog.h"
#include "core/joza.h"
#include "gateway/gateway.h"
#include "http/request_parser.h"
#include "util/codec.h"

namespace joza::webapp {
namespace {

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    app_ = attack::MakeTestbed();
    server_ = std::make_unique<HttpServer>(*app_);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = port.value();
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<Application> app_;
  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

TEST_F(HttpServerTest, ServesFrontPage) {
  auto r = HttpGet(port_, "/");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("Post "), std::string::npos);
}

TEST_F(HttpServerTest, UrlDecodingThroughTheWire) {
  auto r = HttpGet(port_, "/search?s=Post%201");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
}

TEST_F(HttpServerTest, NotFound) {
  auto r = HttpGet(port_, "/missing");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
}

TEST_F(HttpServerTest, MalformedRequestGets400) {
  auto raw = FetchRaw(port_, "GARBAGE\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("400"), std::string::npos);
}

TEST_F(HttpServerTest, PostBodyReachesApplication) {
  const std::string body = "body=hello%20from%20the%20wire";
  auto raw = FetchRaw(
      port_, "POST /comment HTTP/1.0\r\nHost: x\r\nContent-Type: "
             "application/x-www-form-urlencoded\r\nContent-Length: " +
                 std::to_string(body.size()) + "\r\n\r\n" + body);
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("rows affected: 1"), std::string::npos);
}

TEST_F(HttpServerTest, ExploitOverWireLeaksWhenUnprotected) {
  auto r = HttpGet(port_,
                   "/plugins/community-events?uid=-1%20or%201%3D1");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->body.find("s3cr3t_hash"), std::string::npos);
}

TEST_F(HttpServerTest, JozaBlocksExploitOverWire) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  auto attack = HttpGet(port_,
                        "/plugins/community-events?uid=-1%20or%201%3D1");
  ASSERT_TRUE(attack.ok());
  EXPECT_EQ(attack->status, 500);
  EXPECT_TRUE(attack->body.empty());
  // Benign traffic still flows.
  auto ok = HttpGet(port_, "/plugins/community-events?uid=1");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  app_->SetQueryGate(nullptr);
}

TEST_F(HttpServerTest, CookieInputsVisibleToNti) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  // Attack delivered via cookie: the endpoint reads a GET param, so this
  // specific cookie is inert, but NTI must still have seen it (no crash,
  // no false block on the benign param).
  auto raw = FetchRaw(port_,
                      "GET /plugins/community-events?uid=1 HTTP/1.0\r\n"
                      "Host: x\r\nCookie: tracker=-1 or 1=1\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("200"), std::string::npos);
  app_->SetQueryGate(nullptr);
}

TEST_F(HttpServerTest, VirtualTimeHeaderExposesTimingChannel) {
  auto raw = FetchRaw(
      port_,
      "GET /plugins/advertiser?id=1%20and%20sleep(2) HTTP/1.0\r\n"
      "Host: x\r\n\r\n");
  ASSERT_TRUE(raw.ok());
  // The double-blind plugin keeps its body constant; the simulated timing
  // channel is surfaced in a response header for test observability.
  EXPECT_NE(raw->find("X-Virtual-Time-Ms: 2000"), std::string::npos) << *raw;
}

TEST_F(HttpServerTest, ManySequentialConnections) {
  for (int i = 0; i < 25; ++i) {
    auto r = HttpGet(port_, "/post?id=" + std::to_string(i % 50 + 1));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r->status, 200);
  }
  EXPECT_GE(server_->requests_served(), 25u);
}

TEST_F(HttpServerTest, StopIsIdempotent) {
  server_->Stop();
  server_->Stop();
}

// ---------------------------------------------------------------------------
// Incremental framing: the RequestParser state machine the epoll gateway
// feeds from edge-triggered reads. Bytes may arrive one at a time, split at
// any boundary, or carry several pipelined requests in one segment.

TEST(RequestParserTest, FramesARequestFedOneByteAtATime) {
  const std::string req = "GET /post?id=1 HTTP/1.1\r\nHost: x\r\n\r\n";
  http::RequestParser parser(4096);
  std::string raw;
  for (std::size_t i = 0; i + 1 < req.size(); ++i) {
    ASSERT_TRUE(parser.Feed(req.substr(i, 1)));
    EXPECT_FALSE(parser.Next(&raw)) << "completed early at byte " << i;
    EXPECT_TRUE(parser.has_partial());
  }
  ASSERT_TRUE(parser.Feed(req.substr(req.size() - 1)));
  ASSERT_TRUE(parser.Next(&raw));
  EXPECT_EQ(raw, req);
  EXPECT_FALSE(parser.has_partial());
  EXPECT_FALSE(parser.Next(&raw));
}

TEST(RequestParserTest, ResumesAcrossEverySplitBoundary) {
  const std::string body = "body=split";
  const std::string req =
      "POST /comment HTTP/1.1\r\nHost: x\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  // Split the request at every possible boundary — including inside the
  // "\r\n\r\n" terminator and inside the body — as two EAGAIN-separated
  // reads would deliver it.
  for (std::size_t cut = 1; cut < req.size(); ++cut) {
    http::RequestParser parser(4096);
    std::string raw;
    ASSERT_TRUE(parser.Feed(req.substr(0, cut)));
    EXPECT_FALSE(parser.Next(&raw)) << "cut " << cut;
    ASSERT_TRUE(parser.Feed(req.substr(cut)));
    ASSERT_TRUE(parser.Next(&raw)) << "cut " << cut;
    EXPECT_EQ(raw, req) << "cut " << cut;
  }
}

TEST(RequestParserTest, ExtractsPipelinedRequestsFromOneSegment) {
  const std::string first = "GET /a HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\nHost: x\r\n\r\n";
  http::RequestParser parser(4096);
  // One segment carries both complete requests plus a partial third.
  ASSERT_TRUE(parser.Feed(first + second + "GET /c HT"));
  std::string raw;
  ASSERT_TRUE(parser.Next(&raw));
  EXPECT_EQ(raw, first);
  ASSERT_TRUE(parser.Next(&raw));
  EXPECT_EQ(raw, second);
  EXPECT_FALSE(parser.Next(&raw));
  EXPECT_TRUE(parser.has_partial());  // the partial third arms the deadline
  ASSERT_TRUE(parser.Feed("TP/1.1\r\nHost: x\r\n\r\n"));
  ASSERT_TRUE(parser.Next(&raw));
  EXPECT_EQ(raw, "GET /c HTTP/1.1\r\nHost: x\r\n\r\n");
}

TEST(RequestParserTest, UnterminatedHeaderBlockTripsTheCap) {
  http::RequestParser parser(64);
  std::string drip(16, 'a');
  EXPECT_TRUE(parser.Feed(drip));
  EXPECT_TRUE(parser.Feed(drip));
  EXPECT_TRUE(parser.Feed(drip));
  EXPECT_TRUE(parser.Feed(drip));       // exactly at the cap: still fine
  EXPECT_FALSE(parser.Feed("b"));       // one past: overflow, sticky
  EXPECT_TRUE(parser.overflowed());
  EXPECT_FALSE(parser.has_partial());
  EXPECT_FALSE(parser.Feed("c"));
}

TEST(RequestParserTest, OversizedDeclaredBodyTripsTheCap) {
  http::RequestParser parser(64);
  // Headers fit, but the declared Content-Length pushes the full request
  // past the cap — must trip as soon as the declaration is visible.
  EXPECT_FALSE(
      parser.Feed("POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\nxx"));
  EXPECT_TRUE(parser.overflowed());
}

// ---------------------------------------------------------------------------
// Epoll server state machine over real sockets: partial reads, pipelining,
// and partial-write resumption against the event-driven gateway.

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  return fd;
}

std::string RecvToEof(int fd) {
  std::string data;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    data.append(buf, static_cast<std::size_t>(n));
  }
  return data;
}

class EpollStateMachineTest : public ::testing::Test {
 protected:
  void StartServer(gateway::AppFactory factory) {
    gateway::GatewayConfig cfg;
    cfg.io_model = gateway::GatewayConfig::IoModel::kEpoll;
    cfg.event_shards = 2;
    cfg.read_timeout = std::chrono::milliseconds(5000);
    server_ = std::make_unique<gateway::GatewayServer>(std::move(factory),
                                                       nullptr, cfg);
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = port.value();
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<gateway::GatewayServer> server_;
  int port_ = 0;
};

TEST_F(EpollStateMachineTest, ServesARequestDrippedOneByteAtATime) {
  StartServer([] { return attack::MakeTestbed(); });
  const std::string req =
      "GET /post?id=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  int fd = ConnectLoopback(port_);
  ASSERT_GE(fd, 0);
  // Each byte lands as its own segment, so the shard's read state machine
  // resumes across dozens of EAGAIN boundaries before the request frames.
  for (char c : req) {
    ASSERT_EQ(::send(fd, &c, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const std::string response = RecvToEof(fd);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
}

TEST_F(EpollStateMachineTest, PipelinedRequestsInOneSegmentGetTwoResponses) {
  StartServer([] { return attack::MakeTestbed(); });
  const std::string pipelined =
      "GET /post?id=1 HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /post?id=2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  int fd = ConnectLoopback(port_);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::send(fd, pipelined.data(), pipelined.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(pipelined.size()));
  const std::string response = RecvToEof(fd);
  ::close(fd);
  std::size_t statuses = 0;
  for (std::size_t at = response.find("HTTP/1.1 200");
       at != std::string::npos; at = response.find("HTTP/1.1 200", at + 1)) {
    ++statuses;
  }
  EXPECT_EQ(statuses, 2u) << response;
}

TEST_F(EpollStateMachineTest, ResumesPartialWritesOfALargeResponse) {
  // A 4 MB body cannot fit the initial TCP send buffer (tcp_wmem starts at
  // 16 KB): the shard's first send() returns short and the remainder must
  // drain across many EPOLLOUT readiness edges. The client reads at full
  // speed — a reader stalled past keepalive_timeout is deliberately closed
  // as a write-stall, which is not what this test is about.
  constexpr std::size_t kBodyBytes = 4u << 20;
  StartServer([] {
    auto app = MakeWordpressLikeApp(7);
    app->AddRoute(
        "/big",
        [](const http::Request&, const QueryRunner&) {
          http::Response response;
          response.status = 200;
          response.body.assign(kBodyBytes, 'x');
          return response;
        },
        php::SourceFile{"synthetic/big.php", "<?php echo 'big'; ?>"});
    return app;
  });
  int fd = ConnectLoopback(port_);
  ASSERT_GE(fd, 0);
  const std::string req =
      "GET /big HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  const std::string response = RecvToEof(fd);
  ::close(fd);
  ASSERT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  const std::size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_EQ(response.size() - (header_end + 4), kBodyBytes);
}

}  // namespace
}  // namespace joza::webapp
