#include "sqlparse/lexer.h"

#include <gtest/gtest.h>

#include <string>

namespace joza::sql {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& ts) {
  std::vector<std::string> out;
  for (const auto& t : ts) out.emplace_back(t.text);
  return out;
}

TEST(Lexer, SimpleSelect) {
  auto ts = Lex("SELECT * FROM records WHERE ID=5");
  auto texts = Texts(ts);
  std::vector<std::string> expected = {"SELECT", "*", "FROM", "records",
                                       "WHERE",  "ID", "=",   "5"};
  EXPECT_EQ(texts, expected);
  EXPECT_EQ(ts[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(ts[1].kind, TokenKind::kOperator);
  EXPECT_EQ(ts[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts[7].kind, TokenKind::kNumber);
}

TEST(Lexer, SpansAreByteAccurate) {
  std::string q = "SELECT id FROM t";
  auto ts = Lex(q);
  for (const auto& t : ts) {
    EXPECT_EQ(q.substr(t.span.begin, t.span.length()), t.text);
  }
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto ts = Lex("select UnIoN oR");
  ASSERT_EQ(ts.size(), 3u);
  for (const auto& t : ts) EXPECT_EQ(t.kind, TokenKind::kKeyword);
}

TEST(Lexer, StringLiteralsIncludeQuotes) {
  auto ts = Lex("SELECT 'a b c' FROM t");
  ASSERT_GE(ts.size(), 2u);
  EXPECT_EQ(ts[1].kind, TokenKind::kString);
  EXPECT_EQ(ts[1].text, "'a b c'");
}

TEST(Lexer, StringEscapes) {
  // Backslash escape keeps the string one token.
  auto ts = Lex(R"(SELECT 'it\'s ok')");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[1].kind, TokenKind::kString);
  // Doubled-quote escape.
  ts = Lex("SELECT 'it''s ok'");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[1].kind, TokenKind::kString);
}

TEST(Lexer, UnterminatedStringIsError) {
  auto ts = Lex("SELECT 'oops");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[1].kind, TokenKind::kError);
}

TEST(Lexer, CommentsAreSingleTokens) {
  auto ts = Lex("SELECT 1 -- trailing comment");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[2].kind, TokenKind::kComment);
  EXPECT_EQ(ts[2].text, "-- trailing comment");

  ts = Lex("SELECT /* block ''' quotes */ 1");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[1].kind, TokenKind::kComment);

  ts = Lex("SELECT 1 # hash comment");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[2].kind, TokenKind::kComment);
}

TEST(Lexer, CommentIsCritical) {
  auto ts = Lex("SELECT 1 /* x */");
  EXPECT_TRUE(ts[2].IsCritical());
}

TEST(Lexer, FunctionsRequireCallParens) {
  auto ts = Lex("SELECT version(), version FROM t");
  EXPECT_EQ(ts[1].kind, TokenKind::kFunction);  // version(
  // bare "version" is just an identifier
  bool found_ident = false;
  for (const auto& t : ts) {
    if (t.text == "version" && t.kind == TokenKind::kIdentifier) {
      found_ident = true;
    }
  }
  EXPECT_TRUE(found_ident);
}

TEST(Lexer, FunctionNameWithSpaceBeforeParen) {
  auto ts = Lex("SELECT count (1)");
  EXPECT_EQ(ts[1].kind, TokenKind::kFunction);
}

TEST(Lexer, Operators) {
  auto ts = Lex("a<=b<>c!=d>=e||f");
  std::vector<TokenKind> kinds;
  for (const auto& t : ts) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kIdentifier, TokenKind::kOperator, TokenKind::kIdentifier,
      TokenKind::kOperator,   TokenKind::kIdentifier, TokenKind::kOperator,
      TokenKind::kIdentifier, TokenKind::kOperator, TokenKind::kIdentifier,
      TokenKind::kOperator,   TokenKind::kIdentifier};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, NumbersIncludingHexAndFloat) {
  auto ts = Lex("SELECT 12, 3.14, 0x1F, 1e5");
  int numbers = 0;
  for (const auto& t : ts) {
    if (t.kind == TokenKind::kNumber) ++numbers;
  }
  EXPECT_EQ(numbers, 4);
}

TEST(Lexer, Placeholders) {
  auto ts = Lex("SELECT * FROM t WHERE a = ? AND b = :name");
  int ph = 0;
  for (const auto& t : ts) {
    if (t.kind == TokenKind::kPlaceholder) ++ph;
  }
  EXPECT_EQ(ph, 2);
}

TEST(Lexer, BacktickIdentifiers) {
  auto ts = Lex("SELECT `weird name` FROM `t`");
  EXPECT_EQ(ts[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts[1].text, "`weird name`");
}

TEST(Lexer, CriticalTokenClassification) {
  auto ts = Lex("SELECT * FROM data WHERE ID=1 OR TRUE -- c");
  auto crit = CriticalTokens(ts);
  std::vector<std::string> texts = Texts(crit);
  std::vector<std::string> expected = {"SELECT", "*",    "FROM",
                                       "WHERE",  "=",    "OR",
                                       "TRUE",   "-- c"};
  EXPECT_EQ(texts, expected);
}

TEST(Lexer, DataTokensAreNotCritical) {
  auto ts = Lex("SELECT name FROM users WHERE id = 42 AND bio = 'hi'");
  for (const auto& t : ts) {
    if (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kNumber ||
        t.kind == TokenKind::kString) {
      EXPECT_FALSE(t.IsCritical()) << t.text;
    }
  }
}

TEST(Lexer, SemicolonIsCritical) {
  auto ts = Lex("SELECT 1; DROP TABLE users");
  bool semi_critical = false;
  for (const auto& t : ts) {
    if (t.text == ";") semi_critical = t.IsCritical();
  }
  EXPECT_TRUE(semi_critical);
}

TEST(Lexer, EmptyInput) { EXPECT_TRUE(Lex("").empty()); }

TEST(Lexer, WhitespaceOnly) { EXPECT_TRUE(Lex("  \t\n ").empty()); }

}  // namespace
}  // namespace joza::sql
