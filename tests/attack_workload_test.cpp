#include "attack/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "attack/catalog.h"

namespace joza::attack {
namespace {

TEST(Workload, CrawlIsAllReads) {
  for (const auto& wr : MakeCrawlWorkload(100, 1)) {
    EXPECT_FALSE(wr.is_write);
    EXPECT_EQ(wr.request.method, "GET");
  }
}

TEST(Workload, CommentsAreWritesWithUniqueBodies) {
  auto w = MakeCommentWorkload(200, 2);
  std::set<std::string_view> bodies;
  for (const auto& wr : w) {
    EXPECT_TRUE(wr.is_write);
    EXPECT_EQ(wr.request.method, "POST");
    bodies.insert(wr.request.Param("body"));
  }
  // Textual uniqueness is what defeats the query cache for writes.
  EXPECT_EQ(bodies.size(), w.size());
}

TEST(Workload, Deterministic) {
  auto a = MakeMixedWorkload(50, 0.3, 7);
  auto b = MakeMixedWorkload(50, 0.3, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request.path, b[i].request.path);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
}

TEST(Workload, MixedWriteFractionApproximatelyHonored) {
  auto w = MakeMixedWorkload(1000, 0.3, 11);
  std::size_t writes = 0;
  for (const auto& wr : w) writes += wr.is_write;
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(w.size()), 0.3,
              0.06);
}

TEST(Workload, AllRequestsServeableOnTestbed) {
  auto app = MakeTestbed(1);
  for (const auto& wr : MakeMixedWorkload(120, 0.25, 3)) {
    auto resp = app->Handle(wr.request);
    EXPECT_NE(resp.status, 404) << wr.request.path;
  }
  for (const auto& wr : MakeSearchWorkload(40, 4)) {
    EXPECT_EQ(app->Handle(wr.request).status, 200);
  }
}

TEST(WpComStats, WriteFractionBelowOnePercent) {
  // The Table VII takeaway.
  const double wf = WpComWriteFraction();
  EXPECT_GT(wf, 0.0);
  EXPECT_LT(wf, 0.01);
}

TEST(WpComStats, FiveYearsMonotoneGrowth) {
  const auto& stats = WordpressComStats();
  ASSERT_EQ(stats.size(), 5u);
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].year, stats[i - 1].year + 1);
    EXPECT_GT(stats[i].page_views_millions, stats[i - 1].page_views_millions);
  }
}

}  // namespace
}  // namespace joza::attack
