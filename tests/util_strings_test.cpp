#include "util/strings.h"

#include <gtest/gtest.h>

namespace joza {
namespace {

TEST(Strings, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt * FROM t"), "select * from t");
  EXPECT_EQ(ToUpper("union all"), "UNION ALL");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToUpper("123-_"), "123-_");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("UNION", "union"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("UNION", "UNIONS"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n x y \r"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(TrimLeft("  a "), "a ");
  EXPECT_EQ(TrimRight(" a  "), " a");
}

TEST(Strings, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("no hits", "x", "y"), "no hits");
  EXPECT_EQ(ReplaceAll("abcabc", "bc", ""), "aa");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");  // empty needle is a no-op
}

TEST(Strings, AddSlashesMatchesMagicQuotes) {
  // The WordPress magic-quotes transformation NTI evasion leans on.
  EXPECT_EQ(AddSlashes("it's"), "it\\'s");
  EXPECT_EQ(AddSlashes("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(AddSlashes("back\\slash"), "back\\\\slash");
  EXPECT_EQ(AddSlashes("plain"), "plain");
}

TEST(Strings, StripSlashesInvertsAddSlashes) {
  for (const char* s : {"it's", "a\\b", "\"q\"", "mixed '\\\" end", ""}) {
    EXPECT_EQ(StripSlashes(AddSlashes(s)), s) << s;
  }
}

TEST(Strings, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("a   b\t\nc"), "a b c");
  EXPECT_EQ(CollapseWhitespace("  lead and trail  "), "lead and trail");
  EXPECT_EQ(CollapseWhitespace(""), "");
}

TEST(Strings, FindIgnoreCase) {
  EXPECT_EQ(FindIgnoreCase("SELECT * FROM t", "select"), 0u);
  EXPECT_EQ(FindIgnoreCase("abc UNION def", "union"), 4u);
  EXPECT_EQ(FindIgnoreCase("abc", "z"), std::string_view::npos);
  EXPECT_EQ(FindIgnoreCase("abc", ""), 0u);
  EXPECT_TRUE(ContainsIgnoreCase("x Or y", "OR"));
  EXPECT_FALSE(ContainsIgnoreCase("xory", "z"));
}

}  // namespace
}  // namespace joza
