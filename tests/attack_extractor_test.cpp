// End-to-end data exfiltration through each channel class, and Joza
// cutting every channel off — the operational meaning of Table IV.
#include "attack/extractor.h"

#include <gtest/gtest.h>

#include "attack/exploit.h"
#include "core/joza.h"

namespace joza::attack {
namespace {

const PluginSpec& FindPlugin(const char* name) {
  for (const PluginSpec& p : PluginCatalog()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "missing plugin " << name;
  static PluginSpec dummy;
  return dummy;
}

class ExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override { app_ = MakeTestbed(); }
  std::unique_ptr<webapp::Application> app_;
};

TEST_F(ExtractorTest, UnionExtractionRecoversSecret) {
  // Rich union plugin: 2-column data endpoint.
  Extractor ex(*app_, FindPlugin("Count per Day"));
  auto r = ex.ExtractSecret();
  EXPECT_TRUE(r.injectable);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.technique, "union");
  EXPECT_EQ(r.extracted, std::string(kSecretMarker));
  EXPECT_LT(r.requests_used, 20u) << "union extraction is cheap";
}

TEST_F(ExtractorTest, UnionExtractionQuotedContext) {
  Extractor ex(*app_, FindPlugin("Eventify"));  // quoted, 1 column
  auto r = ex.ExtractSecret();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.extracted, std::string(kSecretMarker));
}

TEST_F(ExtractorTest, UnionExtractionThreeColumnApp) {
  Extractor ex(*app_, FindPlugin("Joomla"));  // 3-column case study
  auto r = ex.ExtractSecret();
  EXPECT_TRUE(r.success);
  EXPECT_NE(r.extracted.find(kSecretMarker), std::string::npos);
}

TEST_F(ExtractorTest, BooleanBlindBinarySearchRecoversSecret) {
  Extractor ex(*app_, FindPlugin("MyStat"));  // quoted standard blind
  auto r = ex.ExtractSecret();
  EXPECT_TRUE(r.injectable);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.technique, "boolean-blind");
  EXPECT_EQ(r.extracted, std::string(kSecretMarker));
  // ~14 requests per character is the expected binary-search cost.
  EXPECT_GT(r.requests_used, 100u);
  EXPECT_LT(r.requests_used, 400u);
}

TEST_F(ExtractorTest, TimeBlindBinarySearchRecoversSecret) {
  Extractor ex(*app_, FindPlugin("Advertiser"));  // rich double blind
  auto r = ex.ExtractSecret();
  EXPECT_TRUE(r.injectable);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.technique, "time-blind");
  EXPECT_EQ(r.extracted, std::string(kSecretMarker));
}

TEST_F(ExtractorTest, ProbeNegativeOnSanitizedCoreRoute) {
  // The core /post route is intval-sanitized: probes find nothing.
  PluginSpec sanitized;
  sanitized.name = "core post route";
  sanitized.route = "/post";
  sanitized.param = "id";
  sanitized.transforms = {webapp::Transform::kIntCast};
  sanitized.mode = webapp::ResponseMode::kData;
  sanitized.quoted = false;
  Extractor ex(*app_, sanitized);
  EXPECT_FALSE(ex.ProbeInjectable());
}

TEST_F(ExtractorTest, JozaCutsEveryChannel) {
  core::Joza joza = core::Joza::Install(*app_);
  app_->SetQueryGate(joza.MakeGate());
  for (const char* name :
       {"Count per Day", "Eventify", "MyStat", "Advertiser"}) {
    Extractor ex(*app_, FindPlugin(name));
    auto r = ex.ExtractSecret();
    EXPECT_FALSE(r.success) << name;
    EXPECT_EQ(r.extracted.find(kSecretMarker), std::string::npos) << name;
  }
  app_->SetQueryGate(nullptr);
}

TEST_F(ExtractorTest, InjectabilityProbeMatchesCatalogGroundTruth) {
  // Every catalogued endpoint is injectable; the probe must agree.
  for (const PluginSpec& p : PluginCatalog()) {
    Extractor ex(*app_, p);
    EXPECT_TRUE(ex.ProbeInjectable()) << p.name;
  }
}

}  // namespace
}  // namespace joza::attack
