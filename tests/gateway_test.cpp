// Concurrency suite for the protection gateway: a shared Joza engine, the
// PTI daemon pool, and the thread-pool HTTP server hammered from many
// threads with mixed benign/attack traffic. Runs under ThreadSanitizer in
// CI — every assertion here is also a data-race probe.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "core/joza.h"
#include "core/sharded_cache.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "ipc/daemon_pool.h"
#include "webapp/http_server.h"

namespace joza {
namespace {

constexpr std::size_t kThreads = 8;

// ---------------------------------------------------------------------------
// ShardedSafetyCache
// ---------------------------------------------------------------------------

TEST(ShardedSafetyCache, UnboundedNeverEvicts) {
  core::ShardedSafetyCache cache(/*capacity=*/0, /*shards=*/4);
  for (std::uint64_t h = 0; h < 10000; ++h) cache.Insert(h);
  EXPECT_EQ(cache.size(), 10000u);
  EXPECT_EQ(cache.evictions(), 0u);
  for (std::uint64_t h = 0; h < 10000; ++h) EXPECT_TRUE(cache.Lookup(h));
}

TEST(ShardedSafetyCache, BoundedStaysWithinCapacity) {
  core::ShardedSafetyCache cache(/*capacity=*/256, /*shards=*/8);
  for (std::uint64_t h = 0; h < 100000; ++h) cache.Insert(h);
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(ShardedSafetyCache, ClockKeepsHotEntriesResident) {
  // One shard so the clock hand sweeps a single ring deterministically.
  core::ShardedSafetyCache cache(/*capacity=*/64, /*shards=*/1);
  const std::uint64_t hot = 42;
  cache.Insert(hot);
  for (std::uint64_t h = 1000; h < 5000; ++h) {
    EXPECT_TRUE(cache.Lookup(hot)) << "hot entry evicted at " << h;
    cache.Insert(h);
  }
}

TEST(ShardedSafetyCache, ClearDropsEverything) {
  core::ShardedSafetyCache cache(/*capacity=*/128, /*shards=*/4);
  for (std::uint64_t h = 0; h < 100; ++h) cache.Insert(h);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(ShardedSafetyCache, ConcurrentInsertLookupIsRaceFree) {
  core::ShardedSafetyCache cache(/*capacity=*/1024, /*shards=*/16);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> hits{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        const std::uint64_t h = (t << 32) | (i % 512);
        cache.Insert(h);
        if (cache.Lookup(h)) hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  // An entry this thread just inserted can only disappear via eviction
  // pressure; with 8*512 distinct keys under a 1024 cap, most lookups hit.
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.size(), 1024u);
}

// ---------------------------------------------------------------------------
// JozaStats aggregation
// ---------------------------------------------------------------------------

TEST(JozaStats, AggregatesAcrossSnapshots) {
  core::JozaStats a;
  a.queries_checked = 10;
  a.attacks_detected = 2;
  core::JozaStats b;
  b.queries_checked = 5;
  b.nti_runs = 5;
  a += b;
  EXPECT_EQ(a.queries_checked, 15u);
  EXPECT_EQ(a.attacks_detected, 2u);
  EXPECT_EQ(a.nti_runs, 5u);
}

// ---------------------------------------------------------------------------
// Shared engine under concurrent Check()
// ---------------------------------------------------------------------------

struct TrafficItem {
  std::string query;
  std::vector<http::Input> inputs;
  bool is_attack = false;
};

std::vector<TrafficItem> MakeMixedTraffic() {
  std::vector<TrafficItem> items;
  // Benign: the template family every worker shares (cache-friendly).
  for (int id = 1; id <= 40; ++id) {
    TrafficItem benign;
    benign.query =
        "SELECT id, title, body FROM wp_posts WHERE id = " + std::to_string(id);
    benign.inputs = {{http::InputKind::kGet, "id", std::to_string(id)}};
    items.push_back(std::move(benign));
  }
  // Attacks: tautology and union through the same template.
  for (const char* payload :
       {"-1 or 1=1", "-1 union select login, pass from wp_users",
        "0 or sleep(2)"}) {
    TrafficItem attack;
    attack.query =
        std::string("SELECT id, title, body FROM wp_posts WHERE id = ") +
        payload;
    attack.inputs = {{http::InputKind::kGet, "id", payload}};
    attack.is_attack = true;
    items.push_back(std::move(attack));
  }
  return items;
}

TEST(ConcurrentJoza, EightThreadsSharedEngineVerdictsAndStats) {
  auto app = attack::MakeTestbed();
  core::JozaConfig config;
  config.cache_capacity = 4096;  // bounded shards on the concurrent path
  core::Joza joza = core::Joza::Install(*app, config);

  const std::vector<TrafficItem> traffic = MakeMixedTraffic();
  constexpr std::size_t kRounds = 50;
  std::atomic<std::size_t> wrong_verdicts{0};
  std::atomic<std::size_t> attacks_sent{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < traffic.size(); ++i) {
          // Stagger start positions so threads collide on the caches.
          const TrafficItem& item =
              traffic[(i + t * 7 + round) % traffic.size()];
          core::Verdict v = joza.Check(item.query, item.inputs);
          if (v.attack != item.is_attack) {
            wrong_verdicts.fetch_add(1, std::memory_order_relaxed);
          }
          if (item.is_attack) {
            attacks_sent.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong_verdicts.load(), 0u)
      << "concurrent checking changed verdicts";
  const core::JozaStats stats = joza.stats();
  EXPECT_EQ(stats.queries_checked, kThreads * kRounds * traffic.size());
  EXPECT_EQ(stats.attacks_detected, attacks_sent.load());
  // Every check either hit a cache or ran full PTI; nothing lost.
  EXPECT_EQ(stats.nti_runs, stats.queries_checked);
  EXPECT_GT(stats.query_cache_hits + stats.structure_cache_hits, 0u);
}

TEST(ConcurrentJoza, AttackSinkSequencesAreUniqueUnderConcurrency) {
  auto app = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*app);
  std::vector<std::size_t> sequences;
  joza.SetAttackSink([&](const core::AttackReport& report) {
    sequences.push_back(report.sequence);  // sink_mu serializes this
  });
  const std::string attack =
      "SELECT id FROM wp_posts WHERE id = -1 or 1=1";
  const std::vector<http::Input> inputs = {
      {http::InputKind::kGet, "id", "-1 or 1=1"}};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) joza.Check(attack, inputs);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(sequences.size(), kThreads * 25u);
  std::sort(sequences.begin(), sequences.end());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], i + 1) << "duplicate or skipped sequence";
  }
}

TEST(ConcurrentJoza, BoundedCachePreservesVerdictsInSingleThread) {
  // Satellite check: a tiny cache forgets verdicts (more PTI re-runs) but
  // never changes them — eviction is safety-preserving.
  auto app = attack::MakeTestbed();
  core::JozaConfig tiny;
  tiny.cache_capacity = 8;
  tiny.cache_shards = 2;
  // The benign family shares one AST shape; without this the structure
  // cache absorbs it and the tiny query cache never feels pressure.
  tiny.structure_cache = false;
  core::Joza bounded = core::Joza::Install(*app, tiny);
  core::Joza unbounded = core::Joza::Install(*app);

  const std::vector<TrafficItem> traffic = MakeMixedTraffic();
  for (int round = 0; round < 3; ++round) {
    for (const TrafficItem& item : traffic) {
      core::Verdict vb = bounded.Check(item.query, item.inputs);
      core::Verdict vu = unbounded.Check(item.query, item.inputs);
      EXPECT_EQ(vb.attack, vu.attack) << item.query;
      EXPECT_EQ(vb.attack, item.is_attack) << item.query;
    }
  }
  EXPECT_GT(bounded.stats().cache_evictions, 0u);
  EXPECT_EQ(unbounded.stats().cache_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot churn: lock-free readers vs RCU ruleset swaps
// ---------------------------------------------------------------------------

TEST(SnapshotChurn, ReadersStayCorrectWhileRulesetSwaps) {
  // kThreads readers hammer Check() while the main thread churns
  // OnSourcesChanged: every swap publishes a fresh immutable snapshot and
  // the readers pin whichever one is current with a single atomic load.
  // Under TSan this is the data-race probe for the RCU publication path.
  php::FragmentSet fragments;
  fragments.AddRaw("SELECT * FROM records WHERE ID=");
  fragments.AddRaw(" LIMIT 5");
  core::Joza joza{std::move(fragments)};

  const std::string benign = "SELECT * FROM records WHERE ID=5 LIMIT 5";
  const std::string attack =
      "SELECT * FROM records WHERE ID=1 UNION SELECT 2 LIMIT 5";

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (joza.Check(benign, {}).attack) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        if (!joza.Check(attack, {}).attack) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Each swap adds sources that never mention UNION, so no snapshot along
  // the way can flip either verdict: benign stays trusted, attack stays
  // detected, across every version the readers might pin.
  constexpr std::size_t kSwaps = 50;
  for (std::size_t i = 0; i < kSwaps; ++i) {
    joza.OnSourcesChanged(
        {{"live_plugin.php",
          "$q = 'SELECT name" + std::to_string(i) + " FROM t';"}});
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(wrong.load(), 0u) << "snapshot churn changed a verdict";
  EXPECT_EQ(joza.ruleset_version(), kSwaps);
  const core::JozaStats stats = joza.stats();
  EXPECT_EQ(stats.ruleset_version, kSwaps);
  EXPECT_EQ(stats.ruleset_swaps, kSwaps);
  // A check issued after the churn settles carries the final version.
  EXPECT_EQ(joza.Check(benign, {}).ruleset_version, kSwaps);
}

TEST(SnapshotChurn, ConcurrentSwappersSerializeAndAllPublish) {
  // Writer-writer: concurrent OnSourcesChanged calls serialize on swap_mu;
  // every swap must land (version advances by exactly one per call).
  php::FragmentSet fragments;
  fragments.AddRaw("SELECT * FROM records WHERE ID=");
  core::Joza joza{std::move(fragments)};

  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kSwapsEach = 10;
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::size_t i = 0; i < kSwapsEach; ++i) {
        joza.OnSourcesChanged(
            {{"w" + std::to_string(w) + "_" + std::to_string(i) + ".php",
              "$q = 'SELECT col" + std::to_string(w * kSwapsEach + i) +
                  " FROM t';"}});
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(joza.ruleset_version(), kWriters * kSwapsEach);
  EXPECT_EQ(joza.stats().ruleset_swaps, kWriters * kSwapsEach);
}

// ---------------------------------------------------------------------------
// DaemonPool
// ---------------------------------------------------------------------------

class DaemonPoolTest : public ::testing::Test {
 protected:
  // The paper's running example (Fig. 2): a tiny fragment vocabulary with
  // deterministic PTI verdicts, same corpus as ipc_test.
  void SetUp() override {
    fragments_.AddRaw("SELECT * FROM records WHERE ID=");
    fragments_.AddRaw(" LIMIT 5");
  }
  php::FragmentSet fragments_;
  const std::string benign_ = "SELECT * FROM records WHERE ID=5 LIMIT 5";
  const std::string attack_ =
      "SELECT * FROM records WHERE ID=1 OR 1=1 LIMIT 5";
};

TEST_F(DaemonPoolTest, ConcurrentAnalyzeCorrectVerdicts) {
  ipc::DaemonPool::Options options;
  options.max_size = 4;
  ipc::DaemonPool pool(fragments_, options);

  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        const bool send_attack = (i + t) % 3 == 0;
        auto wire = pool.Analyze(send_attack ? attack_ : benign_);
        if (!wire.ok() || wire->attack_detected != send_attack) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.analyzed, kThreads * 20u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_LE(pool.live(), options.max_size);
  EXPECT_GE(stats.spawned, 1u);
}

TEST_F(DaemonPoolTest, DeadDaemonIsReplacedFailClosed) {
  ipc::DaemonPool::Options options;
  options.min_size = 1;
  options.max_size = 2;
  ipc::DaemonPool pool(fragments_, options);

  auto first = pool.Analyze(benign_);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->attack_detected);

  // Kill every idle daemon out from under the pool.
  for (int pid : pool.child_pids()) {
    ASSERT_GT(pid, 0);
    ::kill(pid, SIGKILL);
  }
  // The pool must notice the corpse, replace it, and still answer
  // correctly (retry path) — not hang and not fail open.
  auto after = pool.Analyze(benign_);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->attack_detected);
  EXPECT_GE(pool.stats().replaced, 1u);
  EXPECT_TRUE(pool.Analyze(attack_)->attack_detected);
}

TEST_F(DaemonPoolTest, BackendErrorsAfterShutdownAndEngineFailsClosed) {
  ipc::DaemonPool pool(fragments_);
  core::PtiFn backend = pool.AsPtiBackend();
  pool.Shutdown();
  // The adapter reports "no verdict" rather than inventing one...
  auto result = backend("SELECT 1", {}, util::Deadline());
  ASSERT_FALSE(result.ok()) << "shut-down pool must not return a verdict";
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // ...and an engine wired to the dead pool blocks the query (default
  // degraded mode is fail-closed).
  core::JozaConfig cfg;
  cfg.enable_nti = false;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  core::Joza joza(fragments_, cfg);
  joza.SetPtiBackend(pool.AsPtiBackend());
  core::Verdict v = joza.Check("SELECT 1", {});
  EXPECT_TRUE(v.attack) << "engine must fail closed on a dead backend";
  EXPECT_TRUE(v.degraded);
}

TEST_F(DaemonPoolTest, IdleReapingRespectsMinSize) {
  ipc::DaemonPool::Options options;
  options.min_size = 1;
  options.max_size = 4;
  options.idle_timeout = std::chrono::milliseconds(0);  // reap immediately
  ipc::DaemonPool pool(fragments_, options);

  // Drive enough parallel traffic to spawn several daemons.
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        (void)pool.Analyze(benign_);
      }
    });
  }
  for (auto& th : threads) th.join();
  pool.ReapIdle();
  EXPECT_LE(pool.live(), std::max<std::size_t>(1, options.min_size));
  // Still serving after the reap.
  auto wire = pool.Analyze(benign_);
  ASSERT_TRUE(wire.ok());
  EXPECT_FALSE(wire->attack_detected);
}

TEST_F(DaemonPoolTest, LazyBroadcastConvergesOnTargetVersion) {
  ipc::DaemonPool::Options options;
  options.max_size = 2;
  ipc::DaemonPool pool(fragments_, options);

  // Spawn one daemon at version 0 and park it idle.
  auto wire = pool.Analyze(attack_);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_TRUE(wire->attack_detected);
  EXPECT_EQ(wire->ruleset_version, 0u);
  EXPECT_EQ(pool.idle_versions(), (std::vector<std::uint64_t>{0}));

  // Update the vocabulary: the pool's target moves, the idle daemon lags
  // behind it (lazy broadcast — nothing round-trips on AddFragments).
  ASSERT_TRUE(pool.AddFragments({" OR 1=1 LIMIT 5"}).ok());
  EXPECT_EQ(pool.target_version(), 1u);
  EXPECT_EQ(pool.idle_versions(), (std::vector<std::uint64_t>{0}));

  // Next checkout ships the pending delta; the daemon converges on the
  // named target version and the new fragment whitens the old attack.
  wire = pool.Analyze(attack_);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_FALSE(wire->attack_detected);
  EXPECT_EQ(wire->ruleset_version, 1u);
  EXPECT_EQ(pool.idle_versions(), (std::vector<std::uint64_t>{1}));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.target_version, 1u);
  EXPECT_EQ(stats.version_mismatches, 0u);
}

TEST_F(DaemonPoolTest, ConcurrentAnalyzeDuringFragmentUpdates) {
  // Analyze traffic races AddFragments: verdicts must never be wrong
  // (fragment updates only widen trust; benign stays benign) and every
  // daemon must converge on the final target version.
  ipc::DaemonPool::Options options;
  options.max_size = 3;
  ipc::DaemonPool pool(fragments_, options);

  constexpr std::size_t kUpdates = 10;
  std::atomic<std::size_t> wrong{0};
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto w = pool.Analyze(benign_);
        if (!w.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else if (w->attack_detected) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::size_t i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(
        pool.AddFragments({" ORDER BY col" + std::to_string(i)}).ok());
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(pool.target_version(), kUpdates);
  // One more round trip after the updates settle: fully converged.
  auto wire = pool.Analyze(benign_);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->ruleset_version, kUpdates);
}

TEST(DaemonPoolIntegration, SharedEngineWithPoolBackendConcurrently) {
  // Full stack, concurrently: one shared Joza engine routing PTI through
  // the daemon pool, checked from kThreads threads at once.
  auto app = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*app);
  ipc::DaemonPool::Options options;
  options.max_size = 4;
  ipc::DaemonPool pool(php::FragmentSet::FromSources(app->sources()), options);
  joza.SetPtiBackend(pool.AsPtiBackend());

  const std::vector<TrafficItem> traffic = MakeMixedTraffic();
  std::atomic<std::size_t> wrong{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < traffic.size(); ++i) {
        const TrafficItem& item = traffic[(i + t) % traffic.size()];
        core::Verdict v = joza.Check(item.query, item.inputs);
        if (v.attack != item.is_attack) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0u);
}

// ---------------------------------------------------------------------------
// GatewayServer end-to-end
// ---------------------------------------------------------------------------

TEST(GatewayServer, ConcurrentMixedTrafficOverTheWire) {
  auto proto = attack::MakeTestbed();
  core::JozaConfig config;
  config.cache_capacity = 8192;
  core::Joza joza = core::Joza::Install(*proto, config);

  gateway::GatewayConfig gcfg;
  gcfg.workers = kThreads;
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  constexpr std::size_t kClientThreads = 8;
  constexpr int kPerClient = 30;
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> blocked{0};
  std::atomic<std::size_t> ok_responses{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      gateway::KeepAliveClient client(port.value());
      for (int i = 0; i < kPerClient; ++i) {
        const bool send_attack = (i + t) % 5 == 0;
        auto r = send_attack
                     ? client.Get(
                           "/plugins/community-events?uid=-1%20or%201%3D1")
                     : client.Get("/post?id=" + std::to_string(i % 50 + 1));
        if (!r.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (send_attack) {
          // Terminated request: blank 500 page.
          if (r->status == 500 && r->body.empty()) {
            blocked.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (r->status == 200) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : clients) th.join();

  const std::size_t total = kClientThreads * kPerClient;
  const std::size_t attacks = [] {
    std::size_t n = 0;
    for (std::size_t t = 0; t < kClientThreads; ++t) {
      for (int i = 0; i < kPerClient; ++i) {
        if ((i + static_cast<std::size_t>(t)) % 5 == 0) ++n;
      }
    }
    return n;
  }();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(blocked.load(), attacks) << "every attack must be terminated";
  EXPECT_EQ(ok_responses.load(), total - attacks);
  EXPECT_GE(joza.stats().attacks_detected, attacks);

  const gateway::GatewayStats stats = server.stats();
  EXPECT_EQ(stats.requests_served, total);
  EXPECT_GT(stats.keepalive_reuses, 0u) << "keep-alive must be in effect";
  server.Stop();
}

TEST(GatewayServer, KeepAliveServesManyRequestsPerConnection) {
  gateway::GatewayConfig gcfg;
  gcfg.workers = 2;
  gateway::GatewayServer server([] { return webapp::MakeWordpressLikeApp(7); },
                                nullptr, gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  gateway::KeepAliveClient client(port.value());
  for (int i = 0; i < 20; ++i) {
    auto r = client.Get("/post?id=" + std::to_string(i % 50 + 1));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }
  EXPECT_EQ(client.reconnects(), 0u) << "one connection should suffice";
  const gateway::GatewayStats stats = server.stats();
  EXPECT_EQ(stats.requests_served, 20u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.keepalive_reuses, 19u);
  server.Stop();
}

TEST(GatewayServer, PerConnectionRequestCapForcesReconnect) {
  gateway::GatewayConfig gcfg;
  gcfg.workers = 1;
  gcfg.max_requests_per_connection = 5;
  gateway::GatewayServer server([] { return webapp::MakeWordpressLikeApp(7); },
                                nullptr, gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  gateway::KeepAliveClient client(port.value());
  for (int i = 0; i < 12; ++i) {
    auto r = client.Get("/");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }
  // The server announces Connection: close at the cap; the client closes
  // cleanly and dials fresh. 12 requests at 5 per connection = 3 dials.
  EXPECT_EQ(server.stats().connections_accepted, 3u);
  EXPECT_EQ(server.stats().requests_served, 12u);
  server.Stop();
}

TEST(GatewayServer, BoundedQueueRejectsOverloadWith503) {
  // One deliberately slow worker and a tiny queue: a burst must drain into
  // 503s, not an unbounded backlog.
  auto factory = [] {
    auto app = webapp::MakeWordpressLikeApp(7);
    app->AddRoute(
        "/slow",
        [](const http::Request&, const webapp::QueryRunner&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(150));
          return http::Response{200, "slept", 0.0};
        },
        php::SourceFile{"slow.php", "<?php $q = \"SELECT 1\";"});
    return app;
  };
  gateway::GatewayConfig gcfg;
  gcfg.workers = 1;
  gcfg.queue_capacity = 1;
  gateway::GatewayServer server(factory, nullptr, gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  constexpr std::size_t kBurst = 6;
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kBurst; ++t) {
    clients.emplace_back([&] {
      auto r = webapp::HttpGet(port.value(), "/slow");
      if (!r.ok()) return;
      if (r->status == 200) served.fetch_add(1);
      if (r->status == 503) rejected.fetch_add(1);
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(served.load() + rejected.load(), kBurst);
  EXPECT_GE(rejected.load(), 1u) << "bounded queue never rejected";
  EXPECT_GE(served.load(), 1u);
  EXPECT_EQ(server.stats().connections_rejected, rejected.load());
  server.Stop();
}

TEST(GatewayServer, GracefulStopDrainsAndIsIdempotent) {
  gateway::GatewayConfig gcfg;
  gcfg.workers = 4;
  gateway::GatewayServer server([] { return webapp::MakeWordpressLikeApp(7); },
                                nullptr, gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  // Leave idle keep-alive connections hanging; Stop must sever them
  // instead of waiting out the idle timeout.
  gateway::KeepAliveClient a(port.value());
  gateway::KeepAliveClient b(port.value());
  ASSERT_TRUE(a.Get("/").ok());
  ASSERT_TRUE(b.Get("/post?id=1").ok());
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_EQ(server.stats().requests_served, 2u);
}

TEST(GatewayServer, StatsExposeRulesetVersionAndSwaps) {
  auto proto = attack::MakeTestbed();
  core::Joza joza = core::Joza::Install(*proto);
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  EXPECT_EQ(server.stats().ruleset_version, 0u);
  EXPECT_EQ(server.stats().ruleset_swaps, 0u);

  joza.OnSourcesChanged({{"live_update.php", "$q = 'SELECT 1';"}});
  const gateway::GatewayStats stats = server.stats();
  EXPECT_EQ(stats.ruleset_version, 1u);
  EXPECT_EQ(stats.ruleset_swaps, 1u);
  server.Stop();
}

TEST(GatewayServer, MalformedRequestGets400) {
  gateway::GatewayConfig gcfg;
  gcfg.workers = 1;
  gateway::GatewayServer server([] { return webapp::MakeWordpressLikeApp(7); },
                                nullptr, gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  gateway::KeepAliveClient client(port.value());
  auto raw = client.RoundTrip("GARBAGE\r\n\r\n");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_NE(raw->find("400"), std::string::npos);
  server.Stop();
}

// Both serving backends must survive the same traffic with the same
// observable semantics, regardless of which one JOZA_GATEWAY_IO_MODEL
// selects for the env-driven tests above — so each is pinned explicitly
// here and the pair is asserted to agree.
void DriveAndCheckPinnedModel(gateway::GatewayConfig::IoModel model) {
  gateway::GatewayConfig gcfg;
  gcfg.workers = 2;
  gcfg.io_model = model;
  gateway::GatewayServer server([] { return webapp::MakeWordpressLikeApp(7); },
                                nullptr, gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  gateway::KeepAliveClient client(port.value());
  for (int i = 0; i < 10; ++i) {
    auto r = client.Get("/post?id=" + std::to_string(i + 1));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
  }
  const gateway::GatewayStats stats = server.stats();
  EXPECT_EQ(stats.requests_served, 10u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.keepalive_reuses, 9u);
  server.Stop();
  const bool epoll = model == gateway::GatewayConfig::IoModel::kEpoll;
  EXPECT_EQ(server.shard_count() > 0, epoll);
  if (epoll) {
    std::size_t shard_requests = 0;
    for (const auto& shard : server.shard_stats()) {
      shard_requests += shard.requests;
    }
    EXPECT_EQ(shard_requests, 10u);
  }
}

TEST(GatewayServer, ThreadModelPinnedExplicitly) {
  DriveAndCheckPinnedModel(gateway::GatewayConfig::IoModel::kThreads);
}

TEST(GatewayServer, EpollModelPinnedExplicitly) {
  DriveAndCheckPinnedModel(gateway::GatewayConfig::IoModel::kEpoll);
}

}  // namespace
}  // namespace joza
