#include "match/aho_corasick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace joza::match {
namespace {

using Hit = AhoCorasick::Hit;

std::vector<Hit> NaiveFindAll(const std::vector<std::string>& patterns,
                              std::string_view text) {
  std::vector<Hit> hits;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::string& pat = patterns[p];
    if (pat.empty()) continue;
    std::size_t pos = text.find(pat);
    while (pos != std::string_view::npos) {
      hits.push_back({pos, pat.size(), static_cast<std::int32_t>(p)});
      pos = text.find(pat, pos + 1);
    }
  }
  return hits;
}

void SortHits(std::vector<Hit>& hits) {
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return std::tie(a.begin, a.length, a.pattern_id) <
           std::tie(b.begin, b.length, b.pattern_id);
  });
}

TEST(AhoCorasick, BasicMatches) {
  AhoCorasick ac;
  ac.Add("he", 0);
  ac.Add("she", 1);
  ac.Add("his", 2);
  ac.Add("hers", 3);
  ac.Build();
  auto hits = ac.FindAll("ushers");
  SortHits(hits);
  // "ushers" contains she@1, he@2, hers@2.
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].pattern_id, 1);
  EXPECT_EQ(hits[0].begin, 1u);
  EXPECT_EQ(hits[1].pattern_id, 0);
  EXPECT_EQ(hits[1].begin, 2u);
  EXPECT_EQ(hits[2].pattern_id, 3);
  EXPECT_EQ(hits[2].begin, 2u);
}

TEST(AhoCorasick, OverlappingOccurrences) {
  AhoCorasick ac;
  ac.Add("aa", 7);
  ac.Build();
  auto hits = ac.FindAll("aaaa");
  EXPECT_EQ(hits.size(), 3u);
}

TEST(AhoCorasick, NoMatches) {
  AhoCorasick ac;
  ac.Add("xyz", 0);
  ac.Build();
  EXPECT_TRUE(ac.FindAll("abcabc").empty());
}

TEST(AhoCorasick, EmptyPatternIgnored) {
  AhoCorasick ac;
  EXPECT_EQ(ac.Add("", 0), -1);
  ac.Add("a", 1);
  ac.Build();
  EXPECT_EQ(ac.FindAll("aa").size(), 2u);
}

TEST(AhoCorasick, EmptyText) {
  AhoCorasick ac;
  ac.Add("a", 0);
  ac.Build();
  EXPECT_TRUE(ac.FindAll("").empty());
}

TEST(AhoCorasick, SqlFragmentScenario) {
  // PTI's actual use: fragments from an application matched against a query.
  AhoCorasick ac;
  std::vector<std::string> fragments = {
      "SELECT * FROM records WHERE ID=", " LIMIT 5", "OR", "="};
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    ac.Add(fragments[i], static_cast<std::int32_t>(i));
  }
  ac.Build();
  std::string query = "SELECT * FROM records WHERE ID=5 LIMIT 5";
  auto hits = ac.FindAll(query);
  // The long prefix fragment must be found at position 0.
  bool prefix_found = false;
  for (const auto& h : hits) {
    if (h.pattern_id == 0 && h.begin == 0) prefix_found = true;
    EXPECT_EQ(query.substr(h.begin, h.length),
              fragments[static_cast<std::size_t>(h.pattern_id)]);
  }
  EXPECT_TRUE(prefix_found);
}

TEST(AhoCorasick, BinaryBytes) {
  AhoCorasick ac;
  std::string pat;
  pat.push_back('\0');
  pat.push_back('\xff');
  ac.Add(pat, 0);
  ac.Build();
  std::string text = "x" + pat + "y" + pat;
  EXPECT_EQ(ac.FindAll(text).size(), 2u);
}

class AhoPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property: agrees with naive multi-pattern search on random inputs.
TEST_P(AhoPropertyTest, MatchesNaiveSearch) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> patterns;
    std::set<std::string> seen;
    const std::size_t np = 1 + rng.NextBelow(12);
    for (std::size_t i = 0; i < np; ++i) {
      // Tiny alphabet to force overlaps and shared prefixes/suffixes.
      std::string p;
      std::size_t len = 1 + rng.NextBelow(5);
      for (std::size_t j = 0; j < len; ++j) {
        p.push_back(static_cast<char>('a' + rng.NextBelow(3)));
      }
      if (!seen.insert(p).second) continue;  // AC dedupes; keep sets equal
      patterns.push_back(p);
    }
    AhoCorasick ac;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      ac.Add(patterns[i], static_cast<std::int32_t>(i));
    }
    ac.Build();
    std::string text;
    std::size_t tlen = rng.NextBelow(120);
    for (std::size_t j = 0; j < tlen; ++j) {
      text.push_back(static_cast<char>('a' + rng.NextBelow(3)));
    }
    auto got = ac.FindAll(text);
    auto want = NaiveFindAll(patterns, text);
    SortHits(got);
    SortHits(want);
    ASSERT_EQ(got.size(), want.size()) << "text=" << text;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].begin, want[i].begin);
      EXPECT_EQ(got[i].length, want[i].length);
      EXPECT_EQ(got[i].pattern_id, want[i].pattern_id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace joza::match
