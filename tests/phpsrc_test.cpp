#include <gtest/gtest.h>

#include "phpsrc/fragments.h"
#include "phpsrc/php_lexer.h"

namespace joza::php {
namespace {

TEST(PhpLexer, SingleQuotedLiteral) {
  auto lits = ExtractStringLiterals("<?php $q = 'SELECT * FROM t';");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_EQ(lits[0].value, "SELECT * FROM t");
  EXPECT_FALSE(lits[0].interpolated);
}

TEST(PhpLexer, SingleQuotedEscapes) {
  auto lits = ExtractStringLiterals(R"($x = 'it\'s a \\ test';)");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_EQ(lits[0].value, "it's a \\ test");
}

TEST(PhpLexer, DoubleQuotedEscapes) {
  auto lits = ExtractStringLiterals(R"($x = "line\n\ttab \"q\"";)");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_EQ(lits[0].value, "line\n\ttab \"q\"");
}

TEST(PhpLexer, InterpolationSplitsPieces) {
  // The paper's running example from Section IV-A.
  auto lits = ExtractStringLiterals(
      R"($query = "SELECT * from users where id = $id and password=$password";)");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_TRUE(lits[0].interpolated);
  ASSERT_EQ(lits[0].pieces.size(), 3u);
  EXPECT_EQ(lits[0].pieces[0], "SELECT * from users where id = ");
  EXPECT_EQ(lits[0].pieces[1], " and password=");
  EXPECT_EQ(lits[0].pieces[2], "");
}

TEST(PhpLexer, BraceInterpolation) {
  auto lits =
      ExtractStringLiterals(R"($q = "WHERE id = {$row['id']} LIMIT 5";)");
  ASSERT_EQ(lits.size(), 1u);
  ASSERT_EQ(lits[0].pieces.size(), 2u);
  EXPECT_EQ(lits[0].pieces[0], "WHERE id = ");
  EXPECT_EQ(lits[0].pieces[1], " LIMIT 5");
}

TEST(PhpLexer, ArrayIndexInterpolation) {
  auto lits = ExtractStringLiterals(R"($q = "a $x[3] b";)");
  ASSERT_EQ(lits.size(), 1u);
  ASSERT_EQ(lits[0].pieces.size(), 2u);
  EXPECT_EQ(lits[0].pieces[0], "a ");
  EXPECT_EQ(lits[0].pieces[1], " b");
}

TEST(PhpLexer, ObjectMemberInterpolation) {
  auto lits = ExtractStringLiterals(R"($q = "x $obj->id y";)");
  ASSERT_EQ(lits.size(), 1u);
  ASSERT_EQ(lits[0].pieces.size(), 2u);
  EXPECT_EQ(lits[0].pieces[1], " y");
}

TEST(PhpLexer, EscapedDollarNotInterpolated) {
  auto lits = ExtractStringLiterals(R"($q = "costs \$5";)");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_FALSE(lits[0].interpolated);
  EXPECT_EQ(lits[0].value, "costs $5");
}

TEST(PhpLexer, CommentsNotExtracted) {
  auto lits = ExtractStringLiterals(
      "// 'not this'\n"
      "# \"nor this\"\n"
      "/* 'not' \"these\" */\n"
      "$x = 'only this';");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_EQ(lits[0].value, "only this");
}

TEST(PhpLexer, MultipleLiteralsAndLines) {
  auto lits = ExtractStringLiterals("$a='one';\n$b='two';\n\n$c='three';");
  ASSERT_EQ(lits.size(), 3u);
  EXPECT_EQ(lits[0].line, 1u);
  EXPECT_EQ(lits[1].line, 2u);
  EXPECT_EQ(lits[2].line, 4u);
}

TEST(PhpLexer, Heredoc) {
  auto lits = ExtractStringLiterals(
      "$q = <<<SQL\nSELECT * FROM t WHERE id = $id\nSQL;\n");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_TRUE(lits[0].interpolated);
  EXPECT_EQ(lits[0].pieces[0], "SELECT * FROM t WHERE id = ");
}

TEST(PhpLexer, NowdocNoInterpolation) {
  auto lits = ExtractStringLiterals(
      "$q = <<<'SQL'\nSELECT $notvar FROM t\nSQL;\n");
  ASSERT_EQ(lits.size(), 1u);
  EXPECT_FALSE(lits[0].interpolated);
  EXPECT_EQ(lits[0].pieces[0], "SELECT $notvar FROM t\n");
}

TEST(PhpLexer, UnterminatedStringDropped) {
  auto lits = ExtractStringLiterals("$x = 'oops");
  EXPECT_TRUE(lits.empty());
}

TEST(Placeholders, SprintfSplit) {
  auto parts = SplitAtPlaceholders("SELECT * FROM t WHERE a = %s AND b = %d");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "SELECT * FROM t WHERE a = ");
  EXPECT_EQ(parts[1], " AND b = ");
  EXPECT_EQ(parts[2], "");
}

TEST(Placeholders, PositionalAndPrecision) {
  auto parts = SplitAtPlaceholders("a %1$s b %.2f c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a ");
  EXPECT_EQ(parts[1], " b ");
  EXPECT_EQ(parts[2], " c");
}

TEST(Placeholders, DoublePercentLiteral) {
  auto parts = SplitAtPlaceholders("100%% sure");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "100% sure");
}

TEST(Placeholders, StrayPercentKept) {
  auto parts = SplitAtPlaceholders("50% off");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "50% off");
}

TEST(FragmentSet, FiltersNonSqlFragments) {
  FragmentSet set;
  EXPECT_TRUE(set.AddRaw("SELECT * FROM t WHERE id ="));
  EXPECT_FALSE(set.AddRaw("hello world"));     // no SQL token
  EXPECT_FALSE(set.AddRaw("wp_posts"));        // bare identifier
  EXPECT_TRUE(set.AddRaw(" LIMIT 5"));
  EXPECT_TRUE(set.AddRaw("OR"));
  EXPECT_EQ(set.size(), 3u);
}

TEST(FragmentSet, Dedupes) {
  FragmentSet set;
  EXPECT_TRUE(set.AddRaw("SELECT"));
  EXPECT_FALSE(set.AddRaw("SELECT"));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FragmentSet, CaseSensitiveVocabulary) {
  // PTI matching is byte-exact; "select" and "SELECT" are distinct
  // fragments (this is why Taintless case-matches attack tokens).
  FragmentSet set;
  EXPECT_TRUE(set.AddRaw("SELECT"));
  EXPECT_TRUE(set.AddRaw("select"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains("SELECT"));
  EXPECT_TRUE(set.Contains("select"));
  EXPECT_FALSE(set.Contains("SeLeCt"));
}

TEST(FragmentSet, FromSourcesEndToEnd) {
  // The paper's Section IV-A worked example: interpolated query string
  // yields exactly the SQL-bearing constant pieces.
  std::vector<SourceFile> files = {
      {"plugin.php",
       R"(<?php
$postid = $_GET['id'];
$query = "SELECT * FROM records WHERE ID=$postid LIMIT 5";
$result = mysql_query($query);
)"}};
  auto set = FragmentSet::FromSources(files);
  EXPECT_TRUE(set.Contains("SELECT * FROM records WHERE ID="));
  EXPECT_TRUE(set.Contains(" LIMIT 5"));
  // 'id' has no SQL token and must have been filtered.
  EXPECT_FALSE(set.Contains("id"));
}

TEST(FragmentSet, RecordsProvenance) {
  std::vector<SourceFile> files = {{"wp-content/x.php", "$q='SELECT 1';"}};
  auto set = FragmentSet::FromSources(files);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.fragments()[0].source_path, "wp-content/x.php");
  EXPECT_EQ(set.fragments()[0].line, 1u);
}

}  // namespace
}  // namespace joza::php
