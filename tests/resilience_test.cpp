// Self-healing serving tier: supervisor lifecycle policy, respawn pacing,
// retry/hedge budgets, crash-durable ruleset snapshots, and the chaos
// crash-storm behaviour of the supervised daemon pool. The concurrency
// property tests (half-open probe bound, crash storm) run under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/joza.h"
#include "http/request.h"
#include "ipc/daemon_pool.h"
#include "phpsrc/fragments.h"
#include "resilience/backoff.h"
#include "resilience/circuit_breaker.h"
#include "resilience/hedge.h"
#include "resilience/injector.h"
#include "resilience/snapshot.h"
#include "resilience/supervisor.h"
#include "util/status.h"

namespace joza {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    resilience::FaultInjector::Global().DisarmAll();
    resilience::FaultInjector::Global().ResetCounters();
  }
  void TearDown() override {
    resilience::FaultInjector::Global().DisarmAll();
    resilience::FaultInjector::Global().ResetCounters();
    resilience::FaultInjector::Global().set_hang(30000ms);
  }
};

php::FragmentSet OneFragment() {
  php::FragmentSet set;
  set.AddRaw("SELECT 1");
  return set;
}

std::string TempSnapshotPath(const char* tag) {
  return "/tmp/joza_resilience_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".snap";
}

// ---------------------------------------------------------------------------
// ExponentialBackoff
// ---------------------------------------------------------------------------

using BackoffTest = ResilienceTest;

TEST_F(BackoffTest, DelayGrowsExponentiallyAndCaps) {
  resilience::BackoffOptions options;
  options.base = 50ms;
  options.max = 5000ms;
  options.jitter = 0.0;  // pure nominal schedule
  resilience::ExponentialBackoff backoff(options);
  EXPECT_EQ(backoff.Delay(1), 50ms);
  EXPECT_EQ(backoff.Delay(2), 100ms);
  EXPECT_EQ(backoff.Delay(3), 200ms);
  EXPECT_EQ(backoff.Delay(8), 5000ms) << "growth must cap at max";
  EXPECT_EQ(backoff.Delay(40), 5000ms) << "huge counts must not overflow";
}

TEST_F(BackoffTest, JitterStaysInsideFractionAndIsDeterministic) {
  resilience::BackoffOptions options;
  options.base = 100ms;
  options.max = 10000ms;
  options.jitter = 0.25;
  resilience::ExponentialBackoff a(options);
  resilience::ExponentialBackoff b(options);
  for (std::size_t failures = 1; failures <= 8; ++failures) {
    const auto nominal =
        std::min(options.max, options.base * (1u << (failures - 1)));
    const auto delay = a.Delay(failures);
    EXPECT_GE(delay, nominal - nominal * 25 / 100);
    EXPECT_LE(delay, nominal);
    EXPECT_EQ(delay, b.Delay(failures)) << "jitter must be deterministic";
  }
}

TEST_F(BackoffTest, GatesAttemptsAndResetsOnSuccess) {
  resilience::BackoffOptions options;
  options.base = 50ms;
  options.jitter = 0.0;
  resilience::ExponentialBackoff backoff(options);
  const auto t0 = Clock::now();
  EXPECT_TRUE(backoff.AllowedAt(t0)) << "no failures yet: always allowed";
  backoff.RecordFailure(t0);
  EXPECT_FALSE(backoff.AllowedAt(t0 + 10ms));
  EXPECT_TRUE(backoff.AllowedAt(t0 + 50ms));
  backoff.RecordFailure(t0 + 50ms);  // second consecutive: 100ms delay
  EXPECT_FALSE(backoff.AllowedAt(t0 + 100ms));
  EXPECT_TRUE(backoff.AllowedAt(t0 + 150ms));
  backoff.Reset();
  EXPECT_TRUE(backoff.AllowedAt(t0));
  EXPECT_EQ(backoff.consecutive_failures(), 0u);
}

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

using TokenBucketTest = ResilienceTest;

TEST_F(TokenBucketTest, BurstThenDenyThenRefill) {
  resilience::TokenBucketOptions options;
  options.capacity = 3;
  options.refill_per_sec = 1.0;
  const auto t0 = Clock::now();
  resilience::TokenBucket bucket(options, t0);
  EXPECT_TRUE(bucket.TryWithdraw(1, t0));
  EXPECT_TRUE(bucket.TryWithdraw(1, t0));
  EXPECT_TRUE(bucket.TryWithdraw(1, t0));
  EXPECT_FALSE(bucket.TryWithdraw(1, t0)) << "burst capacity exhausted";
  EXPECT_FALSE(bucket.TryWithdraw(1, t0 + 500ms)) << "only half a token back";
  EXPECT_TRUE(bucket.TryWithdraw(1, t0 + 1100ms)) << "refilled after 1s";
}

TEST_F(TokenBucketTest, DepositClampsAtCapacity) {
  resilience::TokenBucketOptions options;
  options.capacity = 2;
  options.refill_per_sec = 0;
  const auto t0 = Clock::now();
  resilience::TokenBucket bucket(options, t0);
  bucket.Deposit(100);
  EXPECT_TRUE(bucket.TryWithdraw(1, t0));
  EXPECT_TRUE(bucket.TryWithdraw(1, t0));
  EXPECT_FALSE(bucket.TryWithdraw(1, t0)) << "deposit must clamp at capacity";
}

// ---------------------------------------------------------------------------
// RetryBudget
// ---------------------------------------------------------------------------

using RetryBudgetTest = ResilienceTest;

TEST_F(RetryBudgetTest, SpendsToZeroThenDeniesUntilSuccessesEarnBack) {
  resilience::RetryBudgetOptions options;
  options.capacity = 2;
  options.earn_per_success = 0.5;
  resilience::RetryBudget budget(options);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend()) << "budget exhausted";
  EXPECT_EQ(budget.denied(), 1u);
  budget.RecordSuccess();
  EXPECT_FALSE(budget.TrySpend()) << "half a token is not a retry";
  budget.RecordSuccess();
  EXPECT_TRUE(budget.TrySpend()) << "two successes earned one retry back";
  EXPECT_EQ(budget.denied(), 2u);
}

TEST_F(RetryBudgetTest, ZeroCapacityDisablesTheGuard) {
  resilience::RetryBudgetOptions options;
  options.capacity = 0;
  resilience::RetryBudget budget(options);
  EXPECT_FALSE(budget.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.TrySpend());
  EXPECT_EQ(budget.denied(), 0u);
}

// ---------------------------------------------------------------------------
// LatencyTracker
// ---------------------------------------------------------------------------

using LatencyTrackerTest = ResilienceTest;

TEST_F(LatencyTrackerTest, FallbackUntilEnoughSamplesThenQuantile) {
  resilience::LatencyTracker tracker(64);
  EXPECT_EQ(tracker.Quantile(0.99, 1234us, 4), 1234us);
  for (int i = 1; i <= 100; ++i) {
    tracker.Record(std::chrono::microseconds(i * 10));
  }
  // Window of 64 keeps samples 370..1000 us; p50 sits mid-window and p99
  // near the top.
  const auto p50 = tracker.Quantile(0.50, 0us, 4);
  const auto p99 = tracker.Quantile(0.99, 0us, 4);
  EXPECT_GT(p50, 370us);
  EXPECT_LT(p50, 1000us);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 1000us);
}

// ---------------------------------------------------------------------------
// DaemonSupervisor policy
// ---------------------------------------------------------------------------

resilience::SupervisorOptions FastSupervisor() {
  resilience::SupervisorOptions options;
  options.restart_budget = 8;
  options.restart_refill_per_sec = 0;
  options.backoff.base = 20ms;
  options.backoff.max = 100ms;
  options.backoff.jitter = 0.0;
  options.flap_threshold = 3;
  options.flap_window = 10000ms;
  options.quarantine = 80ms;
  return options;
}

using SupervisorTest = ResilienceTest;

TEST_F(SupervisorTest, HealthySpawnsAreFreeAndAdmitted) {
  resilience::DaemonSupervisor supervisor(FastSupervisor());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(supervisor.AdmitSpawn().ok());
    supervisor.RecordSpawnSuccess();
  }
  const auto stats = supervisor.stats();
  EXPECT_EQ(stats.spawns_admitted, 20u);
  EXPECT_EQ(stats.restarts, 0u) << "scale-up spawns are not restarts";
  EXPECT_EQ(supervisor.state(), resilience::SupervisorState::kHealthy);
}

TEST_F(SupervisorTest, SpawnFailureTriggersBackoffDenial) {
  resilience::DaemonSupervisor supervisor(FastSupervisor());
  ASSERT_TRUE(supervisor.AdmitSpawn().ok());
  supervisor.RecordSpawnFailure();
  const Status denied = supervisor.AdmitSpawn();
  EXPECT_FALSE(denied.ok()) << "retry must wait out the backoff";
  EXPECT_EQ(supervisor.state(), resilience::SupervisorState::kBackoff);
  std::this_thread::sleep_for(40ms);
  EXPECT_TRUE(supervisor.AdmitSpawn().ok()) << "backoff lapsed";
  supervisor.RecordSpawnSuccess();
  EXPECT_EQ(supervisor.state(), resilience::SupervisorState::kHealthy);
  const auto stats = supervisor.stats();
  EXPECT_GE(stats.restarts, 1u) << "a spawn after a failure is a restart";
  EXPECT_GE(stats.restarts_denied, 1u);
}

TEST_F(SupervisorTest, FlappingQuarantinesThenProbeRecovers) {
  resilience::DaemonSupervisor supervisor(FastSupervisor());
  // Three crashes inside the flap window trip quarantine.
  for (int i = 0; i < 3; ++i) supervisor.RecordCrash();
  EXPECT_TRUE(supervisor.quarantined());
  EXPECT_EQ(supervisor.state(), resilience::SupervisorState::kQuarantined);
  EXPECT_FALSE(supervisor.AdmitSpawn().ok()) << "quarantine refuses spawns";

  // After the quarantine lapses exactly one probe is admitted; others keep
  // getting refused until its outcome is known.
  std::this_thread::sleep_for(120ms);
  EXPECT_TRUE(supervisor.AdmitSpawn().ok()) << "probe spawn";
  EXPECT_FALSE(supervisor.AdmitSpawn().ok()) << "one probe at a time";
  supervisor.RecordSpawnSuccess();
  EXPECT_FALSE(supervisor.quarantined());
  EXPECT_EQ(supervisor.state(), resilience::SupervisorState::kHealthy);
  const auto stats = supervisor.stats();
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_GE(stats.quarantine_probes, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
}

TEST_F(SupervisorTest, FailedProbeReQuarantines) {
  resilience::DaemonSupervisor supervisor(FastSupervisor());
  for (int i = 0; i < 3; ++i) supervisor.RecordCrash();
  ASSERT_TRUE(supervisor.quarantined());
  std::this_thread::sleep_for(120ms);
  ASSERT_TRUE(supervisor.AdmitSpawn().ok());
  supervisor.RecordSpawnFailure();  // probe failed: back to quarantine
  EXPECT_TRUE(supervisor.quarantined());
  EXPECT_EQ(supervisor.stats().quarantines, 2u);
}

TEST_F(SupervisorTest, RestartBudgetBoundsRespawnRate) {
  resilience::SupervisorOptions options = FastSupervisor();
  options.restart_budget = 2;
  options.flap_threshold = 100;  // keep flap detection out of the way
  options.backoff.base = 1ms;
  options.backoff.max = 1ms;  // constant 1ms pacing; the bucket decides
  resilience::DaemonSupervisor supervisor(options);
  // Each failure->spawn cycle charges the budget; capacity 2 with no
  // refill admits exactly two restarts.
  std::size_t admitted = 0;
  for (int i = 0; i < 6; ++i) {
    supervisor.RecordSpawnFailure();
    std::this_thread::sleep_for(5ms);  // wait out the backoff each round
    if (supervisor.AdmitSpawn().ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 2u) << "restart budget must bound respawns";
  EXPECT_GE(supervisor.stats().restarts_denied, 4u);
}

TEST_F(SupervisorTest, ZeroBudgetDisablesSupervision) {
  resilience::SupervisorOptions options = FastSupervisor();
  options.restart_budget = 0;
  resilience::DaemonSupervisor supervisor(options);
  EXPECT_FALSE(supervisor.enabled());
  for (int i = 0; i < 50; ++i) {
    supervisor.RecordCrash();
    EXPECT_TRUE(supervisor.AdmitSpawn().ok())
        << "disabled supervisor admits everything (pre-supervisor policy)";
  }
}

// ---------------------------------------------------------------------------
// CircuitBreaker half-open probe bound (concurrency property, TSan target)
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, HalfOpenAdmitsAtMostMaxProbesConcurrently) {
  constexpr std::size_t kMaxProbes = 3;
  resilience::CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown = 30ms;
  options.half_open_successes = kMaxProbes;
  resilience::CircuitBreaker breaker(options);

  breaker.RecordFailure();  // trip it
  ASSERT_EQ(breaker.state(), resilience::BreakerState::kOpen);
  std::this_thread::sleep_for(60ms);  // cooldown over: half-open on next Allow

  // 16 threads hammer Allow() without reporting outcomes. The breaker must
  // admit at most kMaxProbes probes total (each unreported probe holds its
  // slot), and the concurrent-probe gauge must never exceed the bound.
  std::atomic<std::size_t> admitted{0};
  std::atomic<std::size_t> gauge{0};
  std::atomic<std::size_t> gauge_max{0};
  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (!breaker.Allow()) continue;
        const std::size_t now = gauge.fetch_add(1) + 1;
        std::size_t seen = gauge_max.load();
        while (now > seen && !gauge_max.compare_exchange_weak(seen, now)) {
        }
        admitted.fetch_add(1);
        std::this_thread::sleep_for(1ms);  // hold the probe slot briefly
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GE(admitted.load(), 1u) << "the cooldown must admit a probe";
  EXPECT_LE(admitted.load(), kMaxProbes)
      << "unreported probes must hold their slots";
  EXPECT_LE(gauge_max.load(), kMaxProbes);
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kHalfOpen);

  // Reporting the held probes successful closes the breaker.
  for (std::size_t i = 0; i < admitted.load(); ++i) breaker.RecordSuccess();
  for (std::size_t i = admitted.load(); i < kMaxProbes; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Ruleset snapshots
// ---------------------------------------------------------------------------

using SnapshotTest = ResilienceTest;

php::FragmentSet ThreeFragments() {
  php::FragmentSet set;
  set.AddRaw("SELECT * FROM posts WHERE id=", "app/post.php", 12);
  set.AddRaw("INSERT INTO comments VALUES (", "app/comment.php", 40);
  set.AddRaw("SELECT name FROM users WHERE uid=", "plugins/events.php", 7);
  return set;
}

TEST_F(SnapshotTest, RoundTripPreservesVersionAndFragments) {
  const php::FragmentSet fragments = ThreeFragments();
  const std::string image = resilience::EncodeRulesetSnapshot(fragments, 42);
  auto loaded = resilience::ParseRulesetSnapshot(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 42u);
  ASSERT_EQ(loaded->fragments.size(), fragments.size());
  for (const auto& fragment : fragments.fragments()) {
    EXPECT_TRUE(loaded->fragments.Contains(fragment.text)) << fragment.text;
  }
  EXPECT_EQ(loaded->fragments.fragments()[0].source_path, "app/post.php");
  EXPECT_EQ(loaded->fragments.fragments()[0].line, 12u);
}

TEST_F(SnapshotTest, FileRoundTripViaAtomicRename) {
  const std::string path = TempSnapshotPath("roundtrip");
  ASSERT_TRUE(
      resilience::SaveRulesetSnapshot(path, ThreeFragments(), 7).ok());
  auto loaded = resilience::LoadRulesetSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 7u);
  EXPECT_EQ(loaded->fragments.size(), 3u);
  // Re-save over the existing file (the steady-state publish path).
  ASSERT_TRUE(
      resilience::SaveRulesetSnapshot(path, ThreeFragments(), 8).ok());
  loaded = resilience::LoadRulesetSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version, 8u);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  auto loaded =
      resilience::LoadRulesetSnapshot("/tmp/joza_no_such_snapshot.snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, InjectedIoFailureLeavesPreviousSnapshotIntact) {
  const std::string path = TempSnapshotPath("iofail");
  ASSERT_TRUE(
      resilience::SaveRulesetSnapshot(path, ThreeFragments(), 3).ok());
  resilience::FaultInjector::Global().Arm(
      resilience::FaultPoint::kSnapshotIo, 1.0);
  const Status failed =
      resilience::SaveRulesetSnapshot(path, ThreeFragments(), 4);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  resilience::FaultInjector::Global().DisarmAll();
  auto loaded = resilience::LoadRulesetSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << "failed persist must not clobber the old file";
  EXPECT_EQ(loaded->version, 3u) << "previous generation must survive";
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, EngineSinkPersistsEveryPublish) {
  const std::string path = TempSnapshotPath("sink");
  core::JozaConfig config;
  config.initial_ruleset_version = 10;  // warm-started engine
  core::Joza joza(OneFragment(), config);
  EXPECT_EQ(joza.ruleset_version(), 10u);
  joza.SetSnapshotSink([&path](const php::FragmentSet& fragments,
                               std::uint64_t version) {
    return resilience::SaveRulesetSnapshot(path, fragments, version);
  });
  php::SourceFile update;
  update.path = "plugins/new.php";
  update.content = "<?php $q = \"SELECT secret FROM vault\"; ?>";
  joza.OnSourcesChanged({update});
  EXPECT_EQ(joza.ruleset_version(), 11u);
  auto loaded = resilience::LoadRulesetSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 11u) << "sink must persist the published version";
  EXPECT_TRUE(loaded->fragments.Contains("SELECT secret FROM vault"));
  const core::JozaStats stats = joza.stats();
  EXPECT_EQ(stats.snapshot_saves, 1u);
  EXPECT_EQ(stats.snapshot_save_failures, 0u);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, PoolContinuesVersionLineFromBaseVersion) {
  ipc::DaemonPool::Options options;
  options.max_size = 1;
  options.base_version = 9;
  ipc::DaemonPool pool(OneFragment(), options);
  EXPECT_EQ(pool.target_version(), 9u);
  ASSERT_TRUE(pool.AddFragments({"SELECT x FROM warm"}).ok());
  EXPECT_EQ(pool.target_version(), 10u);
  // A daemon spawned after the update handshakes at the continued version.
  auto verdict = pool.Analyze("SELECT 1", util::Deadline::After(2000ms));
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->ruleset_version, 10u);
  pool.Shutdown();
}

// ---------------------------------------------------------------------------
// Supervised pool under chaos
// ---------------------------------------------------------------------------

using ChaosStormTest = ResilienceTest;

TEST_F(ChaosStormTest, TotalSpawnStormQuarantinesInsteadOfForkStorming) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kSpawnFail, 1.0);

  ipc::DaemonPool::Options options;
  options.max_size = 2;
  options.per_call_timeout = 200ms;
  options.supervisor.restart_budget = 4;
  options.supervisor.restart_refill_per_sec = 0;
  options.supervisor.backoff.base = 1ms;
  options.supervisor.backoff.max = 5ms;
  options.supervisor.flap_threshold = 3;
  options.supervisor.flap_window = 10000ms;
  options.supervisor.quarantine = 60000ms;  // stays down for the test
  ipc::DaemonPool pool(OneFragment(), options);

  // Every spawn fails: the supervisor must converge to quarantine within
  // the restart budget and each Analyze must fail (never fail open).
  std::size_t failures = 0;
  for (int i = 0; i < 12; ++i) {
    auto verdict = pool.Analyze("SELECT 1", util::Deadline::After(500ms));
    EXPECT_FALSE(verdict.ok()) << "no daemon ever went live";
    ++failures;
    if (pool.quarantined()) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(pool.quarantined())
      << "crash storm must converge to quarantine within the budget";
  EXPECT_GE(failures, 1u);

  // Quarantined shard fails fast: no backoff wait, no fork attempt.
  const auto t0 = Clock::now();
  auto fast = pool.Analyze("SELECT 1", util::Deadline::After(5000ms));
  EXPECT_FALSE(fast.ok());
  EXPECT_LT(Clock::now() - t0, 1000ms) << "quarantine must fail fast";

  const auto stats = pool.stats();
  EXPECT_GE(stats.supervisor.quarantines, 1u);
  EXPECT_GE(stats.supervisor.spawn_failures, 3u);
  EXPECT_GT(stats.supervisor.restarts_denied, 0u);
  EXPECT_EQ(stats.analyzed, 0u);
  pool.Shutdown();
}

TEST_F(ChaosStormTest, QuarantinedPoolDegradesEngineToNtiOnlyNotFailOpen) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kSpawnFail, 1.0);

  ipc::DaemonPool::Options options;
  options.max_size = 1;
  options.per_call_timeout = 200ms;
  options.supervisor.restart_budget = 3;
  options.supervisor.restart_refill_per_sec = 0;
  options.supervisor.backoff.base = 1ms;
  options.supervisor.flap_threshold = 2;
  options.supervisor.quarantine = 60000ms;
  ipc::DaemonPool pool(OneFragment(), options);

  core::JozaConfig config;
  config.degraded_mode = core::DegradedMode::kNtiOnly;
  config.breaker.failure_threshold = 3;
  core::Joza joza(OneFragment(), config);
  joza.SetPtiBackend(pool.AsPtiBackend());

  // Drive traffic until the shard quarantines; from then on NTI alone
  // decides. Benign queries keep flowing, tainted ones are still blocked —
  // at no point does a query pass without SOME analyzer's verdict.
  for (int i = 0; i < 8 && !pool.quarantined(); ++i) {
    (void)joza.Check("SELECT 1", {});
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(pool.quarantined());

  core::Verdict benign = joza.Check("SELECT 1", {});
  EXPECT_FALSE(benign.attack) << "NTI-only keeps serving benign traffic";
  EXPECT_TRUE(benign.degraded);

  std::vector<http::Input> inputs = {
      {http::InputKind::kGet, "id", "1 OR 1=1"}};
  core::Verdict attack =
      joza.Check("SELECT * FROM posts WHERE id=1 OR 1=1", inputs);
  EXPECT_TRUE(attack.attack) << "zero fail-open: NTI still catches taint";

  pool.Shutdown();
}

TEST_F(ChaosStormTest, PartialSpawnStormKeepsServingWithZeroFailOpen) {
  auto& injector = resilience::FaultInjector::Global();
  // 30% of spawns fail (deterministic arithmetic schedule); the supervisor
  // paces retries but the shard must keep serving.
  injector.Arm(resilience::FaultPoint::kSpawnFail, 0.3);

  ipc::DaemonPool::Options options;
  options.max_size = 2;
  options.per_call_timeout = 2000ms;
  options.supervisor.restart_budget = 32;
  options.supervisor.backoff.base = 1ms;
  options.supervisor.backoff.max = 10ms;
  options.supervisor.flap_threshold = 50;  // partial storm: no quarantine
  ipc::DaemonPool pool(OneFragment(), options);

  std::size_t served = 0;
  for (int i = 0; i < 20; ++i) {
    auto verdict = pool.Analyze("SELECT 1", util::Deadline::After(3000ms));
    if (verdict.ok()) {
      ++served;
      EXPECT_FALSE(verdict->attack_detected) << "benign query must stay benign";
    }
  }
  EXPECT_GE(served, 15u) << "a 30% spawn-fail storm must not stop serving";
  EXPECT_FALSE(pool.quarantined());
  pool.Shutdown();
}

// ---------------------------------------------------------------------------
// Hedged analyze
// ---------------------------------------------------------------------------

using HedgeTest = ResilienceTest;

TEST_F(HedgeTest, HedgeRacesAStragglingPrimaryAndWins) {
  auto& injector = resilience::FaultInjector::Global();
  injector.set_hang(400ms);
  // Every other round trip hangs; the hedge (launched after 20ms) lands on
  // a healthy daemon and wins those races.
  injector.Arm(resilience::FaultPoint::kDaemonHang, 0.5);

  ipc::DaemonPool::Options options;
  options.max_size = 3;
  options.per_call_timeout = 2000ms;
  options.hedge_delay = 20ms;
  ipc::DaemonPool pool(OneFragment(), options);

  std::size_t ok = 0;
  for (int i = 0; i < 10; ++i) {
    auto verdict = pool.Analyze("SELECT 1", util::Deadline::After(3000ms));
    if (verdict.ok()) ++ok;
  }
  const auto stats = pool.stats();
  EXPECT_EQ(ok, 10u) << "hedging must mask the stalls";
  EXPECT_GT(stats.hedges_launched, 0u);
  EXPECT_GT(stats.hedges_won, 0u) << "stalled primaries lose to the hedge";
  pool.Shutdown();
}

TEST_F(HedgeTest, InjectedHedgeLossStillLetsThePrimaryWin) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kHedgeLoss, 1.0);
  injector.set_hang(50ms);
  injector.Arm(resilience::FaultPoint::kDaemonHang, 0.5);

  ipc::DaemonPool::Options options;
  options.max_size = 2;
  options.per_call_timeout = 2000ms;
  options.hedge_delay = 10ms;
  ipc::DaemonPool pool(OneFragment(), options);

  std::size_t ok = 0;
  for (int i = 0; i < 8; ++i) {
    auto verdict = pool.Analyze("SELECT 1", util::Deadline::After(3000ms));
    if (verdict.ok()) ++ok;
  }
  EXPECT_EQ(ok, 8u) << "a lost hedge race must never fail the request";
  EXPECT_EQ(pool.stats().hedges_won, 0u) << "injected losses cannot win";
  pool.Shutdown();
}

TEST_F(HedgeTest, ExhaustedRetryBudgetSuppressesHedging) {
  auto& injector = resilience::FaultInjector::Global();
  injector.set_hang(30ms);
  injector.Arm(resilience::FaultPoint::kDaemonHang, 1.0);  // slow primaries

  ipc::DaemonPool::Options options;
  options.max_size = 2;
  options.per_call_timeout = 2000ms;
  options.hedge_delay = 1ms;  // would hedge nearly every request...
  options.retry_budget.capacity = 0.5;  // ...but the budget denies all
  options.retry_budget.earn_per_success = 0;
  ipc::DaemonPool pool(OneFragment(), options);

  for (int i = 0; i < 6; ++i) {
    auto verdict = pool.Analyze("SELECT 1", util::Deadline::After(3000ms));
    EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hedges_launched, 0u)
      << "a drained budget must degrade to single attempts";
  EXPECT_GT(stats.retries_denied, 0u);
  pool.Shutdown();
}

}  // namespace
}  // namespace joza
