#include "db/value.h"

#include <gtest/gtest.h>

namespace joza::db {
namespace {

TEST(Value, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.truthy());
  EXPECT_EQ(v.as_string(), "NULL");
  EXPECT_EQ(v.as_int(), 0);
}

TEST(Value, IntAndDouble) {
  EXPECT_EQ(Value(std::int64_t{42}).as_int(), 42);
  EXPECT_EQ(Value(3.5).as_double(), 3.5);
  EXPECT_EQ(Value(3.5).as_int(), 4);  // rounds
  EXPECT_TRUE(Value(std::int64_t{1}).truthy());
  EXPECT_FALSE(Value(std::int64_t{0}).truthy());
}

TEST(Value, MysqlStringCoercion) {
  EXPECT_EQ(Value(std::string("12abc")).as_int(), 12);
  EXPECT_EQ(Value(std::string("abc")).as_int(), 0);
  EXPECT_DOUBLE_EQ(Value(std::string(" 3.5x")).as_double(), 3.5);
  EXPECT_TRUE(Value(std::string("1")).truthy());
  EXPECT_FALSE(Value(std::string("abc")).truthy());  // numeric prefix 0
  EXPECT_FALSE(Value(std::string("0")).truthy());
}

TEST(Value, CompareEqCoerces) {
  // MySQL: '1' = 1 is true.
  EXPECT_TRUE(Value::CompareEq(Value(std::string("1")), Value(std::int64_t{1}))
                  .truthy());
  // 'abc' = 0 is true (string coerces to 0) — the root of many tautologies.
  EXPECT_TRUE(
      Value::CompareEq(Value(std::string("abc")), Value(std::int64_t{0}))
          .truthy());
  EXPECT_FALSE(
      Value::CompareEq(Value(std::int64_t{1}), Value(std::int64_t{2}))
          .truthy());
}

TEST(Value, StringComparisonCaseInsensitive) {
  EXPECT_TRUE(
      Value::CompareEq(Value(std::string("Admin")), Value(std::string("admin")))
          .truthy());
  EXPECT_TRUE(
      Value::CompareLt(Value(std::string("apple")), Value(std::string("Banana")))
          .truthy());
}

TEST(Value, NullPropagatesThroughComparison) {
  EXPECT_TRUE(Value::CompareEq(Value::Null(), Value(std::int64_t{1})).is_null());
  EXPECT_TRUE(Value::CompareLt(Value(std::int64_t{1}), Value::Null()).is_null());
}

TEST(Value, OrderCompare) {
  EXPECT_LT(Value::OrderCompare(Value::Null(), Value(std::int64_t{0})), 0);
  EXPECT_EQ(Value::OrderCompare(Value::Null(), Value::Null()), 0);
  EXPECT_LT(Value::OrderCompare(Value(std::int64_t{1}), Value(std::int64_t{2})), 0);
  EXPECT_GT(Value::OrderCompare(Value(std::string("b")), Value(std::string("a"))), 0);
  EXPECT_EQ(Value::OrderCompare(Value(std::int64_t{2}), Value(2.0)), 0);
}

TEST(Value, NumericPrefixParsing) {
  EXPECT_DOUBLE_EQ(MysqlNumericPrefix("-1 OR 1=1"), -1.0);
  EXPECT_DOUBLE_EQ(MysqlNumericPrefix("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(MysqlNumericPrefix(""), 0.0);
  EXPECT_DOUBLE_EQ(MysqlNumericPrefix("  7 "), 7.0);
}

}  // namespace
}  // namespace joza::db
