// Prepared-statement execution and the Drupal lesson: bound parameters are
// injection-proof, but the *prepared text* itself is not if user input can
// shape it (CVE-2014-3704).
#include <gtest/gtest.h>

#include "core/joza.h"
#include "db/database.h"
#include "phpsrc/fragments.h"

namespace joza::db {
namespace {

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE users (id INT, login TEXT, "
                            "pass TEXT)")
                    .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO users VALUES "
                            "(1, 'admin', 'hash1'), (2, 'bob', 'hash2')")
                    .ok());
  }
  Database db_;
};

TEST_F(PreparedTest, PositionalBinding) {
  auto r = db_.ExecutePrepared("SELECT login FROM users WHERE id = ?",
                               {Value(std::int64_t{2})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "bob");
}

TEST_F(PreparedTest, MultiplePlaceholdersInQueryOrder) {
  auto r = db_.ExecutePrepared(
      "SELECT login FROM users WHERE id > ? AND id < ?",
      {Value(std::int64_t{0}), Value(std::int64_t{2})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].as_string(), "admin");
}

TEST_F(PreparedTest, NamedPlaceholders) {
  auto r = db_.ExecutePrepared("SELECT login FROM users WHERE id = :uid",
                               {Value(std::int64_t{1})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_string(), "admin");
}

TEST_F(PreparedTest, PlaceholdersInInsertAndUpdate) {
  auto r = db_.ExecutePrepared("INSERT INTO users VALUES (?, ?, ?)",
                               {Value(std::int64_t{3}),
                                Value(std::string("eve")),
                                Value(std::string("hash3"))});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->affected, 1u);
  r = db_.ExecutePrepared("UPDATE users SET pass = ? WHERE id = ?",
                          {Value(std::string("newhash")),
                           Value(std::int64_t{3})});
  ASSERT_TRUE(r.ok());
  auto check = db_.Execute("SELECT pass FROM users WHERE id = 3");
  EXPECT_EQ(check->rows[0][0].as_string(), "newhash");
}

TEST_F(PreparedTest, ParamCountMismatchRejected) {
  EXPECT_FALSE(db_.ExecutePrepared("SELECT ? + ?", {Value(std::int64_t{1})})
                   .ok());
  EXPECT_FALSE(db_.ExecutePrepared("SELECT 1", {Value(std::int64_t{1})}).ok());
}

TEST_F(PreparedTest, BoundSqlTextStaysData) {
  // The whole point of prepared statements: an injection payload bound as
  // a parameter is compared as a string, never parsed as SQL.
  auto r = db_.ExecutePrepared(
      "SELECT COUNT(*) FROM users WHERE login = ?",
      {Value(std::string("x' OR '1'='1"))});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].as_int(), 0);
}

TEST_F(PreparedTest, UnboundPlaceholderOutsidePreparedPathErrors) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM users WHERE id = ?").ok());
}

TEST_F(PreparedTest, JozaPassesProperPreparedText) {
  // The prepared text is application-constant: a fragment covers it fully,
  // and the bound payload never appears in any checked query.
  php::FragmentSet set;
  set.AddRaw("SELECT login FROM users WHERE id = ?");
  core::Joza joza{std::move(set)};
  auto v = joza.Check("SELECT login FROM users WHERE id = ?", {});
  EXPECT_FALSE(v.attack);
}

TEST_F(PreparedTest, JozaCatchesDrupalStylePlaceholderInjection) {
  // CVE-2014-3704: user input forms the placeholder *names*, letting the
  // attacker append SQL to the prepared text itself.
  php::FragmentSet set;
  set.AddRaw("SELECT login FROM users WHERE id IN (:id_");
  set.AddRaw(")");
  core::Joza joza{std::move(set)};
  // name[0; UPDATE users SET pass = 'owned' -- ] style expansion:
  const std::string malicious_prepared_text =
      "SELECT login FROM users WHERE id IN (:id_0); "
      "UPDATE users SET pass = 'owned' -- )";
  auto v = joza.Check(
      malicious_prepared_text,
      {{http::InputKind::kPost, "name",
        "0); UPDATE users SET pass = 'owned' -- "}});
  EXPECT_TRUE(v.attack);
  EXPECT_TRUE(v.pti.attack_detected)
      << "UPDATE/SET never came from application fragments";
}

}  // namespace
}  // namespace joza::db
