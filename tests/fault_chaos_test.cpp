// Chaos suite for the fault-tolerant analysis pipeline: fault injector
// determinism, circuit-breaker transitions, IPC deadlines, hung-daemon
// kill-and-replace, the pool shutdown race, degraded-mode policy, and the
// gateway's hostile-client guards. Runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attack/catalog.h"
#include "core/joza.h"
#include "resilience/circuit_breaker.h"
#include "resilience/injector.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "ipc/daemon.h"
#include "ipc/daemon_pool.h"
#include "ipc/framing.h"
#include "util/deadline.h"

namespace joza {
namespace {

using namespace std::chrono_literals;

// Every test runs against the process-global injector; leave it clean no
// matter how the test exits.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    resilience::FaultInjector::Global().DisarmAll();
    resilience::FaultInjector::Global().ResetCounters();
  }
  void TearDown() override {
    resilience::FaultInjector::Global().DisarmAll();
    resilience::FaultInjector::Global().ResetCounters();
    resilience::FaultInjector::Global().set_hang(30000ms);
  }
};

php::FragmentSet OneFragment() {
  php::FragmentSet set;
  set.AddRaw("SELECT 1");
  return set;
}

// ---------------------------------------------------------------------------
// Fault injector
// ---------------------------------------------------------------------------

using FaultInjectorTest = ChaosTest;

TEST_F(FaultInjectorTest, DisarmedNeverFires) {
  auto& injector = resilience::FaultInjector::Global();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ShouldFire(resilience::FaultPoint::kDaemonHang));
  }
  EXPECT_EQ(injector.fires(resilience::FaultPoint::kDaemonHang), 0u);
  // The disabled fast path does not even count evaluations.
  EXPECT_EQ(injector.evaluations(resilience::FaultPoint::kDaemonHang), 0u);
}

TEST_F(FaultInjectorTest, RateScheduleIsDeterministic) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kDaemonKill, 0.25);
  std::vector<int> fired_at;
  for (int i = 1; i <= 100; ++i) {
    if (injector.ShouldFire(resilience::FaultPoint::kDaemonKill)) {
      fired_at.push_back(i);
    }
  }
  // floor(k/4) crosses an integer exactly at every 4th evaluation.
  ASSERT_EQ(fired_at.size(), 25u);
  for (std::size_t i = 0; i < fired_at.size(); ++i) {
    EXPECT_EQ(fired_at[i], static_cast<int>(4 * (i + 1)));
  }
  EXPECT_EQ(injector.fires(resilience::FaultPoint::kDaemonKill), 25u);
}

TEST_F(FaultInjectorTest, RateOneFiresEveryTimeAndRearmResets) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kFrameCorrupt, 1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.ShouldFire(resilience::FaultPoint::kFrameCorrupt));
  }
  injector.Arm(resilience::FaultPoint::kFrameCorrupt, 0.5);  // rearm: fresh schedule
  EXPECT_FALSE(injector.ShouldFire(resilience::FaultPoint::kFrameCorrupt));
  EXPECT_TRUE(injector.ShouldFire(resilience::FaultPoint::kFrameCorrupt));
}

TEST_F(FaultInjectorTest, ArmedPointsDoNotDisturbOthers) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kShortWrite, 1.0);
  EXPECT_FALSE(injector.ShouldFire(resilience::FaultPoint::kAcceptFail));
  EXPECT_TRUE(injector.ShouldFire(resilience::FaultPoint::kShortWrite));
  EXPECT_TRUE(injector.armed(resilience::FaultPoint::kShortWrite));
  EXPECT_FALSE(injector.armed(resilience::FaultPoint::kAcceptFail));
}

TEST_F(FaultInjectorTest, ArmFromSpecGrammar) {
  auto& injector = resilience::FaultInjector::Global();
  EXPECT_TRUE(resilience::ArmFromSpec(injector, "daemon-hang:0.1").ok());
  EXPECT_TRUE(injector.armed(resilience::FaultPoint::kDaemonHang));
  EXPECT_DOUBLE_EQ(injector.rate(resilience::FaultPoint::kDaemonHang), 0.1);
  // Bare name arms at 1.0.
  EXPECT_TRUE(resilience::ArmFromSpec(injector, "slow-client").ok());
  EXPECT_DOUBLE_EQ(injector.rate(resilience::FaultPoint::kSlowClient), 1.0);
  EXPECT_FALSE(resilience::ArmFromSpec(injector, "no-such-point:0.5").ok());
  EXPECT_FALSE(resilience::ArmFromSpec(injector, "daemon-hang:bogus").ok());
  EXPECT_FALSE(resilience::ArmFromSpec(injector, "daemon-hang:1.5").ok());
  EXPECT_FALSE(resilience::ArmFromSpec(injector, "daemon-hang:-0.5").ok());
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

resilience::CircuitBreakerOptions FastBreaker() {
  resilience::CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown = 50ms;
  options.half_open_successes = 2;
  return options;
}

TEST(CircuitBreaker, StaysClosedBelowThreshold) {
  resilience::CircuitBreaker breaker(FastBreaker());
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();  // resets the consecutive count
  }
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().opens, 0u);
}

TEST(CircuitBreaker, OpensAtThresholdAndFastRejects) {
  resilience::CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().opens, 1u);
  EXPECT_EQ(breaker.stats().fast_rejects, 2u);
}

TEST(CircuitBreaker, HalfOpenProbesCloseOnSuccess) {
  resilience::CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.Allow();
    breaker.RecordFailure();
  }
  std::this_thread::sleep_for(80ms);  // cooldown elapses
  ASSERT_TRUE(breaker.Allow());       // probe 1 admitted
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kHalfOpen);
  breaker.RecordSuccess();
  ASSERT_TRUE(breaker.Allow());       // probe 2 admitted
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_GE(breaker.stats().probes, 2u);
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  resilience::CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.Allow();
    breaker.RecordFailure();
  }
  std::this_thread::sleep_for(80ms);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // the probe fails: straight back to open
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().opens, 2u);
}

TEST(CircuitBreaker, HalfOpenBoundsConcurrentProbes) {
  resilience::CircuitBreaker breaker(FastBreaker());
  for (int i = 0; i < 3; ++i) {
    breaker.Allow();
    breaker.RecordFailure();
  }
  std::this_thread::sleep_for(80ms);
  // half_open_successes = 2 concurrent probes max; the third is refused.
  EXPECT_TRUE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreaker, ThresholdZeroDisables) {
  resilience::CircuitBreakerOptions options;
  options.failure_threshold = 0;
  resilience::CircuitBreaker breaker(options);
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), resilience::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// IPC deadlines
// ---------------------------------------------------------------------------

TEST(IpcDeadlines, ReadFrameTimesOutOnSilentPipe) {
  auto pipe = ipc::MakePipe();
  ASSERT_TRUE(pipe.ok());
  const auto start = std::chrono::steady_clock::now();
  auto frame = ipc::ReadFrame(pipe->first.get(), 64u << 20,
                              util::Deadline::After(100ms));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 2s) << "deadline must bound the wait";
}

TEST(IpcDeadlines, WriteFrameTimesOutWhenPipeIsFull) {
  auto pipe = ipc::MakePipe();
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(ipc::SetNonBlocking(pipe->second.get(), true).ok());
  // Stuff the pipe until the kernel buffer is full, then demand more.
  ipc::Frame big;
  big.type = ipc::MessageType::kAnalyzeRequest;
  big.payload.assign(1u << 20, 'x');
  Status st = Status::Ok();
  for (int i = 0; i < 64 && st.ok(); ++i) {
    st = ipc::WriteFrame(pipe->second.get(), big,
                         util::Deadline::After(100ms));
  }
  ASSERT_FALSE(st.ok()) << "a never-drained pipe must eventually block";
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Hung and crashing daemons
// ---------------------------------------------------------------------------

using DaemonChaosTest = ChaosTest;

TEST_F(DaemonChaosTest, HungDaemonMissesDeadlineThenRecovers) {
  auto& injector = resilience::FaultInjector::Global();
  injector.set_hang(5000ms);
  injector.Arm(resilience::FaultPoint::kDaemonHang, 1.0);

  ipc::DaemonClient client(ipc::DaemonClient::Mode::kPersistent,
                           OneFragment());
  const auto start = std::chrono::steady_clock::now();
  auto v = client.Analyze("SELECT 1", util::Deadline::After(150ms));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 3s) << "hung daemon must not pin the caller";

  // The stream is desynchronized: kill, disarm, and the client respawns a
  // healthy daemon on next use.
  client.Kill();
  injector.DisarmAll();
  auto healthy = client.Analyze("SELECT 1", util::Deadline::After(2000ms));
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_FALSE(healthy->attack_detected);
}

TEST_F(DaemonChaosTest, CrashingDaemonSurfacesErrorNotVerdict) {
  auto& injector = resilience::FaultInjector::Global();
  injector.Arm(resilience::FaultPoint::kDaemonKill, 1.0);
  ipc::DaemonClient client(ipc::DaemonClient::Mode::kPersistent,
                           OneFragment());
  auto v = client.Analyze("SELECT 1", util::Deadline::After(2000ms));
  ASSERT_FALSE(v.ok()) << "a daemon that died mid-request has no verdict";
  injector.DisarmAll();
}

TEST_F(DaemonChaosTest, CorruptFrameRejectedByDaemon) {
  auto& injector = resilience::FaultInjector::Global();
  ipc::DaemonClient client(ipc::DaemonClient::Mode::kPersistent,
                           OneFragment());
  ASSERT_TRUE(client.Ping().ok());  // spawn while the wire is clean
  injector.Arm(resilience::FaultPoint::kFrameCorrupt, 1.0);
  auto v = client.Analyze("SELECT 1", util::Deadline::After(500ms));
  EXPECT_FALSE(v.ok()) << "corrupt frame cannot produce a verdict";
  injector.DisarmAll();
}

TEST_F(DaemonChaosTest, PoolKillsAndReplacesHungDaemons) {
  auto& injector = resilience::FaultInjector::Global();
  injector.set_hang(5000ms);
  injector.Arm(resilience::FaultPoint::kDaemonHang, 1.0);

  ipc::DaemonPool::Options options;
  options.max_size = 2;
  options.per_call_timeout = 150ms;
  ipc::DaemonPool pool(OneFragment(), options);

  const auto start = std::chrono::steady_clock::now();
  auto v = pool.Analyze("SELECT 1");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kDeadlineExceeded);
  // Two attempts, each bounded by per_call_timeout; both daemons killed.
  EXPECT_LT(elapsed, 3s);
  EXPECT_GE(pool.stats().replaced, 2u);
  EXPECT_GE(pool.stats().deadline_misses, 1u);

  // Disarm: freshly spawned daemons are healthy and the pool recovers.
  injector.DisarmAll();
  auto healthy = pool.Analyze("SELECT 1");
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_FALSE(healthy->attack_detected);
}

TEST_F(DaemonChaosTest, PoolRetriesThroughCrashTrains) {
  auto& injector = resilience::FaultInjector::Global();
  // Every other analyze request kills its daemon; the pool's single retry
  // rides through because the retry lands on the non-firing evaluation.
  injector.Arm(resilience::FaultPoint::kDaemonKill, 0.5);
  ipc::DaemonPool::Options options;
  options.max_size = 1;
  options.per_call_timeout = 2000ms;
  ipc::DaemonPool pool(OneFragment(), options);
  std::size_t answered = 0;
  for (int i = 0; i < 6; ++i) {
    auto v = pool.Analyze("SELECT 1");
    if (v.ok()) ++answered;
  }
  injector.DisarmAll();
  EXPECT_GE(answered, 4u) << "retry must absorb isolated daemon crashes";
  EXPECT_GE(pool.stats().replaced, 1u);
}

// ---------------------------------------------------------------------------
// Pool shutdown race
// ---------------------------------------------------------------------------

TEST(DaemonPoolShutdown, RacingAnalyzeCallsDrainSafely) {
  // Hammer Analyze from several threads while Shutdown lands mid-traffic.
  // Pre-fix this was documented "must not race — stop traffic first"; now
  // the pool must drain in-flight calls and answer late ones Unavailable.
  for (int round = 0; round < 3; ++round) {
    ipc::DaemonPool::Options options;
    options.max_size = 2;
    options.per_call_timeout = 1000ms;
    auto pool = std::make_unique<ipc::DaemonPool>(OneFragment(), options);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> ok_count{0};
    std::atomic<std::size_t> unavailable{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          auto v = pool->Analyze("SELECT 1");
          if (v.ok()) {
            ok_count.fetch_add(1, std::memory_order_relaxed);
          } else if (v.status().code() == StatusCode::kUnavailable) {
            unavailable.fetch_add(1, std::memory_order_relaxed);
            break;  // pool is gone; a real caller would degrade here
          }
        }
      });
    }
    std::this_thread::sleep_for(10ms);
    pool->Shutdown();  // races the Analyze loop on purpose
    stop.store(true);
    for (auto& th : threads) th.join();
    pool.reset();
    EXPECT_GT(ok_count.load() + unavailable.load(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Degraded-mode policy in the engine
// ---------------------------------------------------------------------------

core::JozaConfig DegradedConfig(core::DegradedMode mode, bool nti) {
  core::JozaConfig cfg;
  cfg.enable_nti = nti;
  cfg.query_cache = false;
  cfg.structure_cache = false;
  cfg.degraded_mode = mode;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.cooldown = 50ms;
  cfg.breaker.half_open_successes = 1;
  return cfg;
}

TEST(DegradedMode, FailClosedBlocksEverythingAndBreakerOpens) {
  core::Joza joza(OneFragment(),
                  DegradedConfig(core::DegradedMode::kFailClosed, false));
  std::atomic<bool> backend_up{false};
  joza.SetPtiBackend([&](std::string_view, const std::vector<sql::Token>&,
                         util::Deadline) -> StatusOr<pti::PtiResult> {
    if (!backend_up.load()) return Status::Unavailable("injected outage");
    pti::PtiResult r;
    r.attack_detected = false;
    return r;
  });

  for (int i = 0; i < 10; ++i) {
    core::Verdict v = joza.Check("SELECT 1", {});
    EXPECT_TRUE(v.attack) << "fail-closed must block during the outage";
    EXPECT_TRUE(v.degraded);
  }
  EXPECT_EQ(joza.breaker().state(), resilience::BreakerState::kOpen);
  const core::JozaStats stats = joza.stats();
  EXPECT_EQ(stats.degraded_blocks, 10u);
  EXPECT_EQ(stats.attacks_detected, 0u) << "outage blocks are not attacks";
  // Checks 4..10 never reached the backend: the breaker refused them.
  EXPECT_GE(stats.breaker_fast_rejects, 1u);

  // Recovery: backend heals, cooldown elapses, one probe closes the
  // breaker, verdicts flow again.
  backend_up.store(true);
  std::this_thread::sleep_for(80ms);
  core::Verdict probe = joza.Check("SELECT 1", {});
  EXPECT_FALSE(probe.attack) << "half-open probe should reach the backend";
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(joza.breaker().state(), resilience::BreakerState::kClosed);
  EXPECT_GE(joza.breaker().stats().closes, 1u);
  core::Verdict after = joza.Check("SELECT 1", {});
  EXPECT_FALSE(after.attack);
}

TEST(DegradedMode, NtiOnlyKeepsServingAndStillCatchesTaintedQueries) {
  core::Joza joza(OneFragment(),
                  DegradedConfig(core::DegradedMode::kNtiOnly, true));
  joza.SetPtiBackend([](std::string_view, const std::vector<sql::Token>&,
                        util::Deadline) -> StatusOr<pti::PtiResult> {
    return Status::Unavailable("injected outage");
  });

  // Benign query, benign inputs: NTI-only mode keeps serving.
  core::Verdict benign = joza.Check("SELECT 1", {});
  EXPECT_FALSE(benign.attack) << "nti-only must not block benign traffic";
  EXPECT_TRUE(benign.degraded);
  EXPECT_TRUE(benign.pti_unavailable);

  // Tainted query whose critical tokens come verbatim from an input: NTI
  // alone still detects it.
  std::vector<http::Input> inputs = {
      {http::InputKind::kGet, "id", "1 OR 1=1"}};
  core::Verdict attack =
      joza.Check("SELECT * FROM posts WHERE id=1 OR 1=1", inputs);
  EXPECT_TRUE(attack.attack) << "NTI must still catch tainted queries";
  EXPECT_EQ(attack.detected_by, core::DetectedBy::kNti);

  const core::JozaStats stats = joza.stats();
  EXPECT_EQ(stats.degraded_checks, 2u);
  EXPECT_EQ(stats.degraded_blocks, 0u);
}

TEST(DegradedMode, NtiOnlyWithoutNtiStillFailsClosed) {
  // With NTI disabled there is no analyzer left: kNtiOnly must not turn
  // into fail-open.
  core::Joza joza(OneFragment(),
                  DegradedConfig(core::DegradedMode::kNtiOnly, false));
  joza.SetPtiBackend([](std::string_view, const std::vector<sql::Token>&,
                        util::Deadline) -> StatusOr<pti::PtiResult> {
    return Status::Unavailable("injected outage");
  });
  core::Verdict v = joza.Check("SELECT 1", {});
  EXPECT_TRUE(v.attack) << "no analyzer at all must fail closed";
  EXPECT_TRUE(v.degraded);
}

TEST(DegradedMode, DeadlineMissDegradesInsteadOfPinning) {
  // End to end: engine -> pool -> hung daemon, bounded by the ambient
  // request deadline, lands in fail-closed degradation.
  auto& injector = resilience::FaultInjector::Global();
  injector.DisarmAll();
  injector.ResetCounters();
  injector.set_hang(5000ms);
  injector.Arm(resilience::FaultPoint::kDaemonHang, 1.0);

  ipc::DaemonPool::Options options;
  options.max_size = 1;
  options.per_call_timeout = 150ms;
  ipc::DaemonPool pool(OneFragment(), options);
  core::Joza joza(OneFragment(),
                  DegradedConfig(core::DegradedMode::kFailClosed, false));
  joza.SetPtiBackend(pool.AsPtiBackend());

  const auto start = std::chrono::steady_clock::now();
  core::Verdict v;
  {
    util::ScopedRequestDeadline scope(util::Deadline::After(500ms));
    v = joza.Check("SELECT 1", {});
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(v.attack);
  EXPECT_TRUE(v.degraded);
  EXPECT_LT(elapsed, 3s) << "worker must not hang on a stalled daemon";

  injector.DisarmAll();
  injector.set_hang(30000ms);
}

// ---------------------------------------------------------------------------
// Gateway hostile-client guards
// ---------------------------------------------------------------------------

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RecvUntilClose(int fd, std::chrono::milliseconds cap) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(cap.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((cap.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string out;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

class GatewayChaosTest : public ChaosTest {
 protected:
  gateway::GatewayConfig GuardedConfig() {
    gateway::GatewayConfig cfg;
    cfg.workers = 2;
    cfg.read_timeout = 150ms;
    cfg.max_request_bytes = 4096;
    cfg.request_deadline = 1000ms;
    cfg.keepalive_timeout = 2000ms;
    return cfg;
  }
};

TEST_F(GatewayChaosTest, SlowlorisGets408NotAPinnedWorker) {
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, nullptr,
                                GuardedConfig());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  int slow = ConnectTo(port.value());
  ASSERT_GE(slow, 0);
  // First bytes arrive, then the client stalls forever mid-headers.
  ASSERT_GT(::send(slow, "GET / HTT", 9, 0), 0);
  const auto start = std::chrono::steady_clock::now();
  const std::string response = RecvUntilClose(slow, 2000ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ::close(slow);
  EXPECT_NE(response.find("408"), std::string::npos)
      << "slowloris must be answered, got: " << response;
  EXPECT_LT(elapsed, 1500ms) << "guard must fire at read_timeout, not idle";

  // The worker the slow client occupied is free again.
  gateway::KeepAliveClient client(port.value());
  auto ok = client.Get("/post?id=7");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  EXPECT_GE(server.stats().request_timeouts, 1u);
  server.Stop();
}

TEST_F(GatewayChaosTest, OversizedRequestGets413) {
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, nullptr,
                                GuardedConfig());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  int fd = ConnectTo(port.value());
  ASSERT_GE(fd, 0);
  std::string huge = "GET /?pad=" + std::string(8192, 'a') + " HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, huge.data(), huge.size(), 0), 0);
  const std::string response = RecvUntilClose(fd, 2000ms);
  ::close(fd);
  EXPECT_NE(response.find("413"), std::string::npos)
      << "oversized request must be answered, got: " << response;
  EXPECT_GE(server.stats().oversized_requests, 1u);
  server.Stop();
}

TEST_F(GatewayChaosTest, OversizedDeclaredBodyGets413) {
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, nullptr,
                                GuardedConfig());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  int fd = ConnectTo(port.value());
  ASSERT_GE(fd, 0);
  const std::string req =
      "POST /comment HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
  ASSERT_GT(::send(fd, req.data(), req.size(), 0), 0);
  const std::string response = RecvUntilClose(fd, 2000ms);
  ::close(fd);
  EXPECT_NE(response.find("413"), std::string::npos);
  server.Stop();
}

TEST_F(GatewayChaosTest, AcceptFailDropsConnectionButServerSurvives) {
  auto& injector = resilience::FaultInjector::Global();
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, nullptr,
                                GuardedConfig());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  injector.Arm(resilience::FaultPoint::kAcceptFail, 1.0);
  {
    gateway::KeepAliveClient doomed(port.value());
    auto r = doomed.Get("/post?id=7");
    EXPECT_FALSE(r.ok()) << "dropped connection cannot yield a response";
  }
  injector.DisarmAll();
  gateway::KeepAliveClient client(port.value());
  auto ok = client.Get("/post?id=7");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, 200);
  server.Stop();
}

TEST_F(GatewayChaosTest, DegradedGatewayNeverFailsOpen) {
  // Full stack under a total PTI outage: protected gateway + pool whose
  // daemons all hang. Every data request must come back virtualized
  // ("Database error"), never with leaked rows, within the deadline.
  auto& injector = resilience::FaultInjector::Global();
  injector.set_hang(5000ms);

  auto proto = attack::MakeTestbed();
  core::JozaConfig cfg;
  // Caches off so every request exercises the (hung) PTI path.
  cfg.query_cache = false;
  cfg.structure_cache = false;
  cfg.degraded_mode = core::DegradedMode::kFailClosed;
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.cooldown = 200ms;
  core::Joza joza = core::Joza::Install(*proto, cfg);

  // Arm BEFORE the pool forks anything: daemons inherit the injector state
  // at fork time, so a pre-outage daemon would answer healthily forever.
  injector.Arm(resilience::FaultPoint::kDaemonHang, 1.0);

  ipc::DaemonPool::Options poptions;
  poptions.max_size = 2;
  poptions.per_call_timeout = 150ms;
  ipc::DaemonPool pool(php::FragmentSet::FromSources(proto->sources()),
                       poptions);
  joza.SetPtiBackend(pool.AsPtiBackend());

  gateway::GatewayConfig gcfg = GuardedConfig();
  gateway::GatewayServer server([] { return attack::MakeTestbed(); }, &joza,
                                gcfg);
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  gateway::KeepAliveClient client(port.value());
  for (int i = 0; i < 6; ++i) {
    // Distinct ids dodge the query cache so every request needs PTI.
    const auto start = std::chrono::steady_clock::now();
    auto r = client.Get("/post?id=" + std::to_string(100 + i));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_LT(elapsed, 3s) << "request " << i << " blew the deadline budget";
    EXPECT_EQ(r->status, 200);
    EXPECT_NE(r->body.find("Database error"), std::string::npos)
        << "degraded response must be virtualized, got: " << r->body;
    EXPECT_EQ(r->body.find("<li>"), std::string::npos)
        << "FAIL OPEN: rows leaked during the outage";
  }
  EXPECT_GT(joza.stats().degraded_blocks, 0u);

  injector.DisarmAll();
  server.Stop();
  pool.Shutdown();
}

}  // namespace
}  // namespace joza
