#include "sqlparse/printer.h"

#include <gtest/gtest.h>

#include "sqlparse/parser.h"
#include "sqlparse/structure.h"
#include "util/rng.h"

namespace joza::sql {
namespace {

// Parse -> print -> parse must preserve structure (the structure hash is
// the equality notion the cache relies on).
void ExpectRoundTrip(const std::string& query) {
  auto first = Parse(query);
  ASSERT_TRUE(first.ok()) << query << ": " << first.status().ToString();
  const std::string printed = Print(first.value());
  auto second = Parse(printed);
  ASSERT_TRUE(second.ok()) << "printed form unparseable: " << printed;
  EXPECT_EQ(StructureHash(first.value()), StructureHash(second.value()))
      << query << "  ->  " << printed;
}

TEST(Printer, SelectRoundTrips) {
  ExpectRoundTrip("SELECT * FROM t WHERE id = 5 LIMIT 5");
  ExpectRoundTrip("SELECT a, b AS x FROM t WHERE a > 1 AND b < 2");
  ExpectRoundTrip("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1");
  ExpectRoundTrip("SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT 1");
  ExpectRoundTrip(
      "SELECT p.a, q.b FROM t p LEFT JOIN u q ON p.id = q.id WHERE p.x = 'v'");
  ExpectRoundTrip("SELECT COUNT(*), MAX(v) FROM t GROUP BY k HAVING COUNT(*) > 2");
  ExpectRoundTrip("SELECT * FROM t WHERE a IN (1, 2, 3) OR b NOT IN (4)");
  ExpectRoundTrip("SELECT * FROM t WHERE a BETWEEN 1 AND 9");
  ExpectRoundTrip("SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL");
  ExpectRoundTrip("SELECT * FROM t WHERE name LIKE '%x%' OR name NOT LIKE 'y'");
  ExpectRoundTrip("SELECT (SELECT MAX(id) FROM u) + 1 FROM t");
  ExpectRoundTrip("SELECT * FROM t WHERE id IN (SELECT id FROM u)");
}

TEST(Printer, DmlRoundTrips) {
  ExpectRoundTrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ExpectRoundTrip("INSERT INTO t VALUES (NULL, 3.5, TRUE)");
  ExpectRoundTrip("UPDATE t SET a = a + 1, b = 'z' WHERE id = 4 LIMIT 1");
  ExpectRoundTrip("DELETE FROM t WHERE id = 9");
  ExpectRoundTrip("CREATE TABLE IF NOT EXISTS t (a INT, b DOUBLE, c TEXT)");
  ExpectRoundTrip("DROP TABLE IF EXISTS t");
}

TEST(Printer, InjectionShapedQueriesRoundTrip) {
  ExpectRoundTrip("SELECT * FROM data WHERE ID = -1 OR 1 = 1");
  ExpectRoundTrip(
      "SELECT title FROM wp_posts WHERE id = -1 "
      "UNION SELECT pass FROM wp_users");
  ExpectRoundTrip("SELECT IF(1 = 1, SLEEP(2), 0)");
}

TEST(Printer, StringEscapesSurvive) {
  auto stmt = Parse(R"(SELECT 'it\'s a \\ test')");
  ASSERT_TRUE(stmt.ok());
  std::string printed = Print(stmt.value());
  auto again = Parse(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(again.value().select->cores[0].items[0].expr->string_value,
            "it's a \\ test");
}

TEST(Printer, Placeholders) {
  ExpectRoundTrip("SELECT * FROM t WHERE a = ? AND b = :uid");
}

// Property: randomly generated expressions round-trip structurally.
class PrinterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  ExprPtr RandomExpr(Rng& rng, int depth) {
    auto e = std::make_unique<Expr>();
    if (depth <= 0 || rng.NextBool(0.3)) {
      switch (rng.NextBelow(4)) {
        case 0:
          e->kind = ExprKind::kIntLiteral;
          e->int_value = rng.NextInRange(-100, 100);
          break;
        case 1:
          e->kind = ExprKind::kStringLiteral;
          e->string_value = rng.NextToken(rng.NextBelow(6));
          break;
        case 2:
          e->kind = ExprKind::kColumnRef;
          e->column = "c" + rng.NextToken(3);
          break;
        default:
          e->kind = ExprKind::kNullLiteral;
          break;
      }
      return e;
    }
    switch (rng.NextBelow(4)) {
      case 0: {
        e->kind = ExprKind::kBinary;
        static constexpr BinaryOp kOps[] = {
            BinaryOp::kOr,  BinaryOp::kAnd, BinaryOp::kEq, BinaryOp::kNe,
            BinaryOp::kLt,  BinaryOp::kGt,  BinaryOp::kAdd, BinaryOp::kSub,
            BinaryOp::kMul, BinaryOp::kLike};
        e->binary_op = kOps[rng.NextBelow(std::size(kOps))];
        e->lhs = RandomExpr(rng, depth - 1);
        e->rhs = RandomExpr(rng, depth - 1);
        break;
      }
      case 1: {
        e->kind = ExprKind::kUnary;
        static constexpr UnaryOp kOps[] = {UnaryOp::kNot, UnaryOp::kNeg,
                                           UnaryOp::kIsNull,
                                           UnaryOp::kIsNotNull};
        e->unary_op = kOps[rng.NextBelow(std::size(kOps))];
        e->lhs = RandomExpr(rng, depth - 1);
        break;
      }
      case 2: {
        e->kind = ExprKind::kFunctionCall;
        e->function_name = rng.NextBool() ? "CONCAT" : "IFNULL";
        e->args.push_back(RandomExpr(rng, depth - 1));
        e->args.push_back(RandomExpr(rng, depth - 1));
        break;
      }
      default: {
        e->kind = ExprKind::kInList;
        e->negated = rng.NextBool();
        e->lhs = RandomExpr(rng, depth - 1);
        std::size_t n = 1 + rng.NextBelow(3);
        for (std::size_t i = 0; i < n; ++i) {
          e->in_list.push_back(RandomExpr(rng, depth - 1));
        }
        break;
      }
    }
    return e;
  }
};

TEST_P(PrinterPropertyTest, RandomExpressionsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    ExprPtr e = RandomExpr(rng, 4);
    const std::string printed = Print(*e);
    auto reparsed = ParseExpression(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    // Compare via a statement-shaped hash: wrap in SELECT <expr>.
    auto s1 = Parse("SELECT " + printed);
    auto s2 = Parse("SELECT " + Print(*reparsed.value()));
    ASSERT_TRUE(s1.ok() && s2.ok()) << printed;
    EXPECT_EQ(StructureHash(s1.value()), StructureHash(s2.value())) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterPropertyTest,
                         ::testing::Values(3, 1415, 926, 535, 89, 793));

}  // namespace
}  // namespace joza::sql
